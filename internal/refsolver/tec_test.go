package refsolver

import (
	"math"
	"testing"

	"tecopt/internal/core"
	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/power"
	"tecopt/internal/tec"
)

func specFor(dev tec.DeviceParams, sites []int, current float64) TECSpec {
	return TECSpec{
		Sites:       sites,
		Current:     current,
		Seebeck:     dev.Seebeck,
		Resistance:  dev.Resistance,
		Kappa:       dev.Kappa,
		ContactCold: dev.ContactCold,
		ContactHot:  dev.ContactHot,
	}
}

func TestTECSpecValidation(t *testing.T) {
	geom := material.DefaultPackage()
	p := make([]float64, 144)
	dev := tec.ChowdhuryDevice()
	bad := specFor(dev, []int{999}, 1)
	if _, err := Solve(geom, 12, 12, p, Options{TEC: bad}); err == nil {
		t.Error("out-of-range site accepted")
	}
	bad = specFor(dev, []int{5}, 1)
	bad.Seebeck = 0
	if _, err := Solve(geom, 12, 12, p, Options{TEC: bad}); err == nil {
		t.Error("invalid device accepted")
	}
	bad = specFor(dev, []int{5}, -1)
	if _, err := Solve(geom, 12, 12, p, Options{TEC: bad}); err == nil {
		t.Error("negative current accepted")
	}
}

// Active validation: the compact model's TEC cooling must agree with the
// fine-grid solver carrying the same devices — both the unpowered
// (passive insertion) and powered cases.
func TestActiveValidationAgainstCompact(t *testing.T) {
	geom := material.DefaultPackage()
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	sites := []int{100, 101, 102, 103, 112, 113, 114}
	dev := tec.ChowdhuryDevice()

	for _, current := range []float64{0, 6} {
		sys, err := core.NewSystem(core.Config{TilePower: p, Device: dev}, sites)
		if err != nil {
			t.Fatal(err)
		}
		theta, err := sys.SolveAt(current)
		if err != nil {
			t.Fatal(err)
		}
		compact := sys.PN.SiliconTemps(theta)

		ref, err := Solve(geom, 12, 12, p, Options{
			FinePitch: geom.DieWidth / 12, // matched granularity
			TEC:       specFor(dev, sites, current),
		})
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := range compact {
			if d := math.Abs(compact[i] - ref.TileTempsK[i]); d > worst {
				worst = d
			}
		}
		t.Logf("i=%.1f A: worst tile difference %.3f C", current, worst)
		if worst > 1.5 {
			t.Errorf("i=%.1f A: active-model difference %.3f C exceeds 1.5 C", current, worst)
		}
	}
}

// The fine-grid model must show the same cooling swing direction and
// comparable magnitude.
func TestReferenceTECCools(t *testing.T) {
	geom := material.DefaultPackage()
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	sites := []int{100, 101, 102, 103}
	dev := tec.ChowdhuryDevice()

	off, err := Solve(geom, 12, 12, p, Options{
		FinePitch: geom.DieWidth / 12,
		TEC:       specFor(dev, sites, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Solve(geom, 12, 12, p, Options{
		FinePitch: geom.DieWidth / 12,
		TEC:       specFor(dev, sites, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	swing := off.PeakK - on.PeakK
	if swing < 1 || swing > 15 {
		t.Fatalf("fine-grid cooling swing %.2f C implausible", swing)
	}
}
