package refsolver

import (
	"math"
	"testing"

	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/num"
	"tecopt/internal/power"
	"tecopt/internal/thermal"
)

func TestSolveValidation(t *testing.T) {
	geom := material.DefaultPackage()
	if _, err := Solve(geom, 0, 12, nil, Options{}); err == nil {
		t.Error("zero cols accepted")
	}
	if _, err := Solve(geom, 12, 12, []float64{1}, Options{}); err == nil {
		t.Error("wrong power length accepted")
	}
	bad := make([]float64, 144)
	bad[0] = -1
	if _, err := Solve(geom, 12, 12, bad, Options{}); err == nil {
		t.Error("negative power accepted")
	}
	geom.ConvectionResistance = 0
	if _, err := Solve(geom, 12, 12, make([]float64, 144), Options{}); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestSolveZeroPowerIsAmbient(t *testing.T) {
	geom := material.DefaultPackage()
	res, err := Solve(geom, 4, 4, make([]float64, 16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for tt, v := range res.TileTempsK {
		if math.Abs(v-geom.AmbientK) > 1e-6 {
			t.Fatalf("tile %d = %v K, want ambient %v", tt, v, geom.AmbientK)
		}
	}
}

func TestSolveEnergyIntuition(t *testing.T) {
	// Mean die rise must be at least P*Rconv (the series convection
	// drop) plus something for conduction.
	geom := material.DefaultPackage()
	p := make([]float64, 16)
	for i := range p {
		p[i] = 1.0 // 16 W uniform
	}
	res, err := Solve(geom, 4, 4, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range res.TileTempsK {
		mean += v
	}
	mean /= 16
	minRise := 16 * geom.ConvectionResistance
	if mean-geom.AmbientK < minRise {
		t.Fatalf("mean rise %.2f K below convection floor %.2f K", mean-geom.AmbientK, minRise)
	}
	if res.PeakK-geom.AmbientK > minRise+40 {
		t.Fatalf("peak rise %.2f K implausibly high", res.PeakK-geom.AmbientK)
	}
}

func TestSolveHotspotSymmetryAndLocality(t *testing.T) {
	geom := material.DefaultPackage()
	p := make([]float64, 9)
	p[4] = 2 // center tile of a 3x3 tiling
	res, err := Solve(geom, 3, 3, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 4-fold symmetry of the corners.
	if math.Abs(res.TileTempsK[0]-res.TileTempsK[8]) > 1e-3 {
		t.Fatalf("corner asymmetry: %v vs %v", res.TileTempsK[0], res.TileTempsK[8])
	}
	if res.TileTempsK[4] <= res.TileTempsK[0] {
		t.Fatal("heated center not hottest")
	}
	if !num.ExactEqual(res.PeakK, res.TileTempsK[4]) {
		t.Fatal("PeakK inconsistent")
	}
}

// The headline validation experiment (Section VI's HotSpot-4.1
// comparison): compact model vs the independent reference solver on the
// Alpha worst-case power map, worst tile difference < 1.5 C.
//
// The comparison runs at the compact model's lateral granularity
// (0.5 mm tiles) — the same matched-granularity validation the paper
// performs, since HotSpot 4.1's default block model shares the one-node-
// per-block construction. The reference still differs structurally:
// fully gridded spreader/sink peripheries, multiple z-sublayers per
// layer, and nonuniform outer cells. Sub-tile granularity effects are
// quantified separately in TestGranularityStudy.
func TestCompactModelWithin1p5C(t *testing.T) {
	geom := material.DefaultPackage()
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)

	pn, err := thermal.BuildPackage(geom, thermal.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	theta, err := pn.SolvePassive(p, thermal.MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	compact := pn.SiliconTemps(theta)

	ref, err := Solve(geom, 12, 12, p, Options{FinePitch: geom.DieWidth / 12})
	if err != nil {
		t.Fatal(err)
	}

	worst := 0.0
	for i := range compact {
		d := math.Abs(compact[i] - ref.TileTempsK[i])
		if d > worst {
			worst = d
		}
	}
	t.Logf("compact vs reference: worst tile difference %.3f C over %d reference cells (%d CG iters)",
		worst, ref.Nodes, ref.Iterations)
	if worst > 1.5 {
		t.Fatalf("worst-case difference %.3f C exceeds the paper's 1.5 C validation bound", worst)
	}
}

// TestGranularityStudy quantifies the compact model's sub-tile spreading
// error against a 2x-finer reference grid. Block-style compact models
// over-predict concentrated hotspots by a few degrees; assert the error
// stays within the known envelope so regressions are caught.
func TestGranularityStudy(t *testing.T) {
	geom := material.DefaultPackage()
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)

	pn, err := thermal.BuildPackage(geom, thermal.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	theta, err := pn.SolvePassive(p, thermal.MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	compact := pn.SiliconTemps(theta)

	ref, err := Solve(geom, 12, 12, p, Options{FinePitch: geom.DieWidth / 24})
	if err != nil {
		t.Fatal(err)
	}
	worst, mean := 0.0, 0.0
	for i := range compact {
		d := compact[i] - ref.TileTempsK[i]
		mean += d
		if math.Abs(d) > worst {
			worst = math.Abs(d)
		}
	}
	mean /= float64(len(compact))
	t.Logf("granularity study: worst %.3f C, mean bias %.3f C", worst, mean)
	if worst > 4.0 {
		t.Fatalf("sub-tile granularity error %.3f C beyond known envelope", worst)
	}
	if math.Abs(mean) > 1.5 {
		t.Fatalf("mean bias %.3f C beyond known envelope", mean)
	}
}

func TestFinerGridConverges(t *testing.T) {
	// Refining the reference grid must not change tile temperatures much
	// (discretization convergence).
	geom := material.DefaultPackage()
	p := make([]float64, 16)
	p[5] = 3
	coarse, err := Solve(geom, 4, 4, p, Options{FinePitch: geom.DieWidth / 16})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Solve(geom, 4, 4, p, Options{FinePitch: geom.DieWidth / 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := range coarse.TileTempsK {
		if math.Abs(coarse.TileTempsK[i]-fine.TileTempsK[i]) > 1.0 {
			t.Fatalf("tile %d: %.3f vs %.3f K between resolutions", i,
				coarse.TileTempsK[i], fine.TileTempsK[i])
		}
	}
	if fine.Nodes <= coarse.Nodes {
		t.Fatal("finer grid did not add cells")
	}
}

func TestAxisProperties(t *testing.T) {
	edges := axis(3e-3, 30e-3, 0.5e-3, 1.7)
	// Must start and end exactly at the domain boundary.
	if !num.ExactEqual(edges[0], -30e-3) || !num.ExactEqual(edges[len(edges)-1], 30e-3) {
		t.Fatalf("axis endpoints: %v .. %v", edges[0], edges[len(edges)-1])
	}
	// Strictly increasing.
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("axis not increasing at %d: %v <= %v", i, edges[i], edges[i-1])
		}
	}
	// Fine region edges include +/- dieHalf.
	foundNeg, foundPos := false, false
	for _, e := range edges {
		if math.Abs(e+3e-3) < 1e-12 {
			foundNeg = true
		}
		if math.Abs(e-3e-3) < 1e-12 {
			foundPos = true
		}
	}
	if !foundNeg || !foundPos {
		t.Fatal("die boundary not on cell edges")
	}
}
