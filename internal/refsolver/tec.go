package refsolver

// TEC support for the reference solver.
//
// The compact model validates its passive behaviour against this solver;
// to validate the *active* behaviour too, the same two-node TEC model
// (Figure 4) is inserted into the fine grid: the TIM cells under each
// TEC site are removed and replaced by one cold and one hot node, with
// the contact conductances split over the fine silicon/spreader cells by
// overlap area, the Peltier conductors entering the diagonal as -i*D,
// and the Joule sources r*i^2/2 on both device nodes. The system stays
// symmetric (D is diagonal), so the same preconditioned CG applies below
// the model's runaway limit.

// TECSpec describes the devices inserted into the reference model.
type TECSpec struct {
	// Sites lists the covered tiles (indices into the cols x rows
	// tiling passed to Solve).
	Sites []int
	// Current is the shared supply current (A).
	Current float64
	// Seebeck, Resistance, Kappa, ContactCold, ContactHot mirror
	// tec.DeviceParams; they are plain fields so the reference solver
	// stays independent of the device package.
	Seebeck     float64
	Resistance  float64
	Kappa       float64
	ContactCold float64
	ContactHot  float64
}

// enabled reports whether any devices are configured.
func (s TECSpec) enabled() bool { return len(s.Sites) > 0 }
