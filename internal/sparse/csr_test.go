package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tecopt/internal/num"
)

func TestBuilderDuplicatesSummed(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3)
	b.Add(1, 1, -1)
	m := b.Build()
	if got := m.At(0, 1); !num.ExactEqual(got, 5) {
		t.Fatalf("At(0,1) = %v, want 5", got)
	}
	if got := m.At(1, 1); !num.ExactEqual(got, -1) {
		t.Fatalf("At(1,1) = %v, want -1", got)
	}
	if got := m.At(0, 0); !num.IsZero(got) {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestBuilderCancellationDropped(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 1)
	b.Add(0, 0, -1)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0 after exact cancellation", m.NNZ())
	}
}

func TestBuilderZeroIgnored(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 0)
	if b.NNZEstimate() != 0 {
		t.Fatal("zero entry was stored")
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	b := NewBuilder(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Add(2, 0, 1)
}

func TestAddSym(t *testing.T) {
	b := NewBuilder(3, 3)
	b.AddSym(0, 2, -4)
	b.AddSym(1, 1, 7)
	m := b.Build()
	if !num.ExactEqual(m.At(0, 2), -4) || !num.ExactEqual(m.At(2, 0), -4) {
		t.Error("AddSym did not mirror off-diagonal")
	}
	if !num.ExactEqual(m.At(1, 1), 7) {
		t.Error("AddSym double-counted the diagonal")
	}
}

func TestMulVec(t *testing.T) {
	// [2 0 1; 0 3 0; 1 0 4]
	b := NewBuilder(3, 3)
	b.AddSym(0, 0, 2)
	b.AddSym(1, 1, 3)
	b.AddSym(2, 2, 4)
	b.AddSym(0, 2, 1)
	m := b.Build()
	got := m.MulVec([]float64{1, 2, 3})
	want := []float64{5, 6, 13}
	for i := range want {
		if !num.ExactEqual(got[i], want[i]) {
			t.Fatalf("MulVec = %v, want %v", got, want)
		}
	}
}

func TestDiag(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 0, 1)
	b.Add(2, 2, 9)
	b.Add(0, 1, 5)
	d := b.Build().Diag()
	want := []float64{1, 0, 9}
	for i := range want {
		if !num.ExactEqual(d[i], want[i]) {
			t.Fatalf("Diag = %v, want %v", d, want)
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddSym(0, 1, -1)
	b.Add(0, 0, 2)
	b.Add(1, 1, 2)
	if !b.Build().IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	b2 := NewBuilder(2, 2)
	b2.Add(0, 1, 1)
	if b2.Build().IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 8, 0.4)
	perm := []int{3, 1, 0, 2, 7, 6, 5, 4}
	p := a.Permute(perm)
	// a_ij must equal p_{perm[i],perm[j]}.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(a.At(i, j)-p.At(perm[i], perm[j])) > 1e-15 {
				t.Fatalf("Permute mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestAddScaledDiag(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	b.Add(0, 1, -0.5)
	a := b.Build()
	out := a.AddScaledDiag(-2, []float64{3, 0})
	if got := out.At(0, 0); !num.ExactEqual(got, -5) {
		t.Fatalf("At(0,0) = %v, want -5", got)
	}
	if got := out.At(1, 1); !num.ExactEqual(got, 1) {
		t.Fatalf("At(1,1) = %v, want 1", got)
	}
	if got := out.At(0, 1); !num.ExactEqual(got, -0.5) {
		t.Fatalf("off-diagonal changed: %v", got)
	}
}

// randomSPD builds a random sparse SPD matrix: weighted graph Laplacian
// plus positive diagonal shifts.
func randomSPD(rng *rand.Rand, n int, density float64) *CSR {
	b := NewBuilder(n, n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		w := 0.1 + rng.Float64()
		b.AddSym(u, v, -w)
		b.Add(u, u, w)
		b.Add(v, v, w)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				w := 0.1 + rng.Float64()
				b.AddSym(i, j, -w)
				b.Add(i, i, w)
				b.Add(j, j, w)
			}
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, 0.1+rng.Float64())
	}
	return b.Build()
}

// Property: CSR At agrees with a dense shadow built from the same triplets.
func TestCSRAtMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		b := NewBuilder(n, n)
		for k := 0; k < 3*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := rng.NormFloat64()
			b.Add(i, j, v)
			dense[i][j] += v
		}
		m := b.Build()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(m.At(i, j)-dense[i][j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
