package sparse

import (
	"math"

	"tecopt/internal/obs"
)

// IC0 is a zero-fill incomplete Cholesky preconditioner: A ~ L L' with L
// restricted to the sparsity pattern of the lower triangle of A. For the
// grid Laplacians produced by the thermal models it typically cuts CG
// iteration counts by 3-5x compared to Jacobi.
type IC0 struct {
	n      int
	rowPtr []int // lower-triangular pattern, strictly below the diagonal
	colIdx []int
	vals   []float64
	diag   []float64 // L diagonal entries
}

// NewIC0 computes the incomplete factorization. It returns
// ErrBreakdown if a pivot becomes non-positive, which can happen for
// matrices that are not (sufficiently) diagonally dominant. Setup time
// and outcome are reported under "sparse.ic0.*" when observability is
// enabled.
func NewIC0(a *CSR) (*IC0, error) {
	r := obs.Enabled()
	if r == nil {
		return newIC0(a)
	}
	start := r.Now()
	p, err := newIC0(a)
	r.Counter("sparse.ic0.setups").Inc()
	r.Histogram("sparse.ic0.setup_ns").Observe(clampNS(r.Now() - start))
	if err != nil {
		r.Counter("sparse.ic0.setup_failures").Inc()
	}
	return p, err
}

// newIC0 is the uninstrumented incomplete factorization.
func newIC0(a *CSR) (*IC0, error) {
	n := a.Rows()
	if a.Cols() != n {
		panic("sparse: IC0 needs a square matrix")
	}
	// Extract the strictly-lower pattern and values plus diagonal.
	rowPtr := make([]int, n+1)
	var colIdx []int
	var vals []float64
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		cols, vs := a.RowNNZ(i)
		for k, j := range cols {
			switch {
			case j < i:
				colIdx = append(colIdx, j)
				vals = append(vals, vs[k])
			case j == i:
				diag[i] = vs[k]
			}
		}
		rowPtr[i+1] = len(colIdx)
	}

	// In-place IKJ incomplete factorization.
	// l_ij = (a_ij - sum_k l_ik l_jk) / l_jj for j < i, pattern-restricted;
	// l_ii = sqrt(a_ii - sum_k l_ik^2).
	for i := 0; i < n; i++ {
		for kk := rowPtr[i]; kk < rowPtr[i+1]; kk++ {
			j := colIdx[kk]
			s := vals[kk]
			// Dot product of rows i and j over shared columns < j.
			pi, pj := rowPtr[i], rowPtr[j]
			for pi < kk && pj < rowPtr[j+1] {
				ci, cj := colIdx[pi], colIdx[pj]
				switch {
				case ci == cj:
					s -= vals[pi] * vals[pj]
					pi++
					pj++
				case ci < cj:
					pi++
				default:
					pj++
				}
			}
			vals[kk] = s / diag[j]
		}
		s := diag[i]
		for kk := rowPtr[i]; kk < rowPtr[i+1]; kk++ {
			s -= vals[kk] * vals[kk]
		}
		if s <= 0 || math.IsNaN(s) {
			return nil, ErrBreakdown
		}
		diag[i] = math.Sqrt(s)
	}
	return &IC0{n: n, rowPtr: rowPtr, colIdx: colIdx, vals: vals, diag: diag}, nil
}

// Apply solves L L' z = r.
func (p *IC0) Apply(z, r []float64) {
	n := p.n
	// Forward solve L y = r (y stored in z).
	for i := 0; i < n; i++ {
		s := r[i]
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			s -= p.vals[k] * z[p.colIdx[k]]
		}
		z[i] = s / p.diag[i]
	}
	// Backward solve L' x = y.
	for i := n - 1; i >= 0; i-- {
		z[i] /= p.diag[i]
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			z[p.colIdx[k]] -= p.vals[k] * z[i]
		}
	}
}

// NewBestPreconditioner returns IC(0) when the factorization succeeds and
// falls back to Jacobi otherwise.
func NewBestPreconditioner(a *CSR) Preconditioner {
	if ic, err := NewIC0(a); err == nil {
		return ic
	}
	return NewJacobi(a)
}
