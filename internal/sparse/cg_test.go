package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tecopt/internal/num"
)

func residual(a *CSR, x, b []float64) float64 {
	r := a.MulVec(x)
	var s float64
	for i := range r {
		d := b[i] - r[i]
		s += d * d
	}
	return math.Sqrt(s) / (1 + norm2(b))
}

func TestCGSolvesSmallSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(rng, 20, 0.2)
	want := make([]float64, 20)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := a.MulVec(want)
	res, err := SolveCG(a, b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("SolveCG: %v", err)
	}
	if r := residual(a, res.X, b); r > 1e-10 {
		t.Fatalf("residual = %v", r)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := randomSPD(rand.New(rand.NewSource(2)), 5, 0.5)
	res, err := SolveCG(a, make([]float64, 5), CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.X {
		if !num.IsZero(v) {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
	if res.Iterations != 0 {
		t.Fatalf("Iterations = %d, want 0", res.Iterations)
	}
}

func TestCGWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 30, 0.2)
	want := make([]float64, 30)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := a.MulVec(want)
	cold, err := SolveCG(a, b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SolveCG(a, b, CGOptions{Tol: 1e-12, X0: cold.X})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > 1 {
		t.Fatalf("warm start took %d iterations", warm.Iterations)
	}
}

func TestCGBreakdownOnIndefinite(t *testing.T) {
	// [-1 0; 0 -1] is negative definite: CG must report breakdown.
	b := NewBuilder(2, 2)
	b.Add(0, 0, -1)
	b.Add(1, 1, -1)
	_, err := SolveCG(b.Build(), []float64{1, 1}, CGOptions{})
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown", err)
	}
}

func TestCGDimensionErrors(t *testing.T) {
	a := randomSPD(rand.New(rand.NewSource(4)), 4, 0.5)
	if _, err := SolveCG(a, []float64{1, 2}, CGOptions{}); err == nil {
		t.Error("expected rhs length error")
	}
	if _, err := SolveCG(a, make([]float64, 4), CGOptions{X0: []float64{1}}); err == nil {
		t.Error("expected x0 length error")
	}
	rect := NewBuilder(2, 3).Build()
	if _, err := SolveCG(rect, []float64{1, 2}, CGOptions{}); err == nil {
		t.Error("expected non-square error")
	}
}

func TestCGNotConverged(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 50, 0.1)
	b := make([]float64, 50)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, err := SolveCG(a, b, CGOptions{Tol: 1e-14, MaxIter: 1, Precond: IdentityPreconditioner{}})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

func TestIC0BeatsJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := gridLaplacian(40, 40) // 1600-node 2D grid, the thermal-model shape
	b := make([]float64, a.Rows())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	jac, err := SolveCG(a, b, CGOptions{Tol: 1e-10, Precond: NewJacobi(a)})
	if err != nil {
		t.Fatalf("Jacobi CG: %v", err)
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatalf("NewIC0: %v", err)
	}
	icg, err := SolveCG(a, b, CGOptions{Tol: 1e-10, Precond: ic})
	if err != nil {
		t.Fatalf("IC0 CG: %v", err)
	}
	if icg.Iterations >= jac.Iterations {
		t.Fatalf("IC0 iterations %d >= Jacobi %d", icg.Iterations, jac.Iterations)
	}
	if r := residual(a, icg.X, b); r > 1e-8 {
		t.Fatalf("IC0 residual %v", r)
	}
}

func TestIC0Breakdown(t *testing.T) {
	// An indefinite matrix must be rejected.
	b := NewBuilder(2, 2)
	b.AddSym(0, 1, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	if _, err := NewIC0(b.Build()); !errors.Is(err, ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown", err)
	}
	// NewBestPreconditioner must fall back to Jacobi, not fail.
	if p := NewBestPreconditioner(b.Build()); p == nil {
		t.Fatal("NewBestPreconditioner returned nil")
	}
}

// TestCGIterationCountRegression pins the exact iteration counts CG
// needs on a reference 2D grid Laplacian under each preconditioner.
// The solve is serial and float arithmetic is deterministic, so the
// counts are stable; a change here means the CG kernel or a
// preconditioner changed numerically and Table/Figure runs that use
// MethodCG may have shifted too.
func TestCGIterationCountRegression(t *testing.T) {
	a := gridLaplacian(24, 24)
	b := make([]float64, a.Rows())
	for i := range b {
		b[i] = 1 + float64(i%7)/7
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    Preconditioner
		want int
	}{
		{"identity", IdentityPreconditioner{}, 107},
		{"jacobi", NewJacobi(a), 106},
		{"ic0", ic, 40},
	}
	for _, tc := range cases {
		res, err := SolveCG(a, b, CGOptions{Tol: 1e-10, Precond: tc.p})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Iterations != tc.want {
			t.Errorf("%s: %d iterations, want %d", tc.name, res.Iterations, tc.want)
		}
		if res.Residual > 1e-10 {
			t.Errorf("%s: final residual %g above tolerance", tc.name, res.Residual)
		}
	}
}

// gridLaplacian builds the 5-point Laplacian of an nx x ny grid with a
// small positive shift (Dirichlet-like legs), mimicking a thermal layer.
func gridLaplacian(nx, ny int) *CSR {
	idx := func(x, y int) int { return y*nx + x }
	b := NewBuilder(nx*ny, nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			if x+1 < nx {
				b.AddSym(i, idx(x+1, y), -1)
				b.Add(i, i, 1)
				b.Add(idx(x+1, y), idx(x+1, y), 1)
			}
			if y+1 < ny {
				b.AddSym(i, idx(x, y+1), -1)
				b.Add(i, i, 1)
				b.Add(idx(x, y+1), idx(x, y+1), 1)
			}
			b.Add(i, i, 0.01)
		}
	}
	return b.Build()
}

// Property: CG solution satisfies the system for random SPD matrices under
// every preconditioner.
func TestCGPreconditionersAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		a := randomSPD(rng, n, 0.3)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		for _, p := range []Preconditioner{IdentityPreconditioner{}, NewJacobi(a), NewBestPreconditioner(a)} {
			res, err := SolveCG(a, b, CGOptions{Tol: 1e-11, Precond: p})
			if err != nil {
				return false
			}
			if residual(a, res.X, b) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
