package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tecopt/internal/faults"
	"tecopt/internal/num"
	"tecopt/internal/tecerr"
)

// smwDirect solves (a - i*diag(d)) x = b by refactoring the shifted
// matrix — the reference the SMW fast path must reproduce.
func smwDirect(t *testing.T, a *CSR, d []float64, i float64, b []float64) []float64 {
	t.Helper()
	c, err := NewBandCholesky(a.AddScaledDiag(-i, d))
	if err != nil {
		t.Fatalf("direct factorization at shift %g: %v", i, err)
	}
	x, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// newGridSMW builds a grid Laplacian with a mixed-sign low-rank update
// (positive entries model Seebeck pumping on hot rows, negative on cold
// rows) and the SMW correction data over its band Cholesky.
func newGridSMW(t *testing.T) (*CSR, []float64, *SMW) {
	t.Helper()
	a := gridLaplacian(9, 7)
	d := make([]float64, a.Rows())
	d[3] = 0.04
	d[17] = 0.03
	d[17+9] = -0.03
	d[40] = 0.05
	d[40+9] = -0.02
	base, err := NewBandCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSMW(d, base.Solve)
	if err != nil {
		t.Fatal(err)
	}
	return a, d, s
}

func TestSMWMatchesDirectAcrossShifts(t *testing.T) {
	a, d, s := newGridSMW(t)
	if s.Rank() != 5 {
		t.Fatalf("rank = %d, want 5", s.Rank())
	}
	lam := s.Lambda()
	if math.IsInf(lam, 1) || lam <= 0 {
		t.Fatalf("lambda = %v, want finite positive", lam)
	}
	base, err := NewBandCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, a.Rows())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.999, -0.5} {
		i := frac * lam
		y, err := base.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Correct(i, y); err != nil {
			t.Fatalf("Correct at i=%g (%.3g*lambda): %v", i, frac, err)
		}
		want := smwDirect(t, a, d, i, b)
		for k := range want {
			if math.Abs(y[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
				t.Fatalf("shift %.3g*lambda node %d: smw %v, direct %v", frac, k, y[k], want[k])
			}
		}
	}
}

// The spectral limit 1/mu_max must agree with the Cholesky breakdown
// boundary of the shifted matrix (Theorem 1).
func TestSMWLambdaMatchesBreakdown(t *testing.T) {
	a, d, s := newGridSMW(t)
	lam := s.Lambda()
	if !num.IsFinite(lam) || lam <= 0 {
		t.Fatalf("lambda = %v, want finite positive", lam)
	}
	if _, err := NewBandCholesky(a.AddScaledDiag(-lam*(1-1e-3), d)); err != nil {
		t.Fatalf("shifted matrix below lambda not PD: %v", err)
	}
	if _, err := NewBandCholesky(a.AddScaledDiag(-lam*(1+1e-3), d)); err == nil {
		t.Fatal("shifted matrix beyond lambda still factored")
	}
}

// A shift inside the conditioning guard of 1/mu_j must refuse the
// correction with the typed sentinel and leave the vector untouched.
func TestSMWGuardTripsNearSingularity(t *testing.T) {
	_, _, s := newGridSMW(t)
	i := s.Lambda() * (1 - 1e-9)
	y := make([]float64, s.n)
	for k := range y {
		y[k] = float64(k)
	}
	before := append([]float64(nil), y...)
	err := s.Correct(i, y)
	if !errors.Is(err, ErrSMWIllConditioned) {
		t.Fatalf("err = %v, want ErrSMWIllConditioned", err)
	}
	if tecerr.CodeOf(err) != tecerr.CodeDiverged {
		t.Fatalf("code = %v, want CodeDiverged", tecerr.CodeOf(err))
	}
	for k := range y {
		if !num.ExactEqual(y[k], before[k]) {
			t.Fatal("guard trip mutated the vector")
		}
	}
}

// Fault injection at the guard site forces the trip at a perfectly
// well-conditioned shift, the hook chaos tests use to exercise the
// guarded fallback.
func TestSMWGuardFaultInjection(t *testing.T) {
	_, _, s := newGridSMW(t)
	faults.Install(faults.New(1).Arm(faults.Rule{
		Site: faults.SiteSMWGuard,
		Kind: faults.KindNaN,
	}))
	defer faults.Uninstall()
	y := make([]float64, s.n)
	y[0] = 1
	if err := s.Correct(0.1*s.Lambda(), y); !errors.Is(err, ErrSMWIllConditioned) {
		t.Fatalf("err = %v, want ErrSMWIllConditioned under injected NaN margin", err)
	}
}

func TestSMWZeroSupport(t *testing.T) {
	a := gridLaplacian(4, 4)
	base, err := NewBandCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSMW(make([]float64, a.Rows()), base.Solve)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank() != 0 {
		t.Fatalf("rank = %d, want 0", s.Rank())
	}
	if !math.IsInf(s.Lambda(), 1) {
		t.Fatalf("lambda = %v, want +Inf", s.Lambda())
	}
	y := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	before := append([]float64(nil), y...)
	if err := s.Correct(3.5, y); err != nil {
		t.Fatal(err)
	}
	for k := range y {
		if !num.ExactEqual(y[k], before[k]) {
			t.Fatal("zero-support Correct is not the identity")
		}
	}
}

func TestSMWInvalidInput(t *testing.T) {
	_, _, s := newGridSMW(t)
	y := make([]float64, s.n)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := s.Correct(bad, y); !errors.Is(err, tecerr.ErrInvalidInput) {
			t.Errorf("Correct(%v) err = %v, want CodeInvalidInput", bad, err)
		}
	}
	if err := s.Correct(0.5, make([]float64, 3)); !errors.Is(err, tecerr.ErrInvalidInput) {
		t.Errorf("short vector err = %v, want CodeInvalidInput", err)
	}
}

// Property: on random SPD systems with random mixed-sign supports, the
// SMW correction matches a direct refactorization of the shifted matrix
// to 1e-9 relative at shifts spanning the PD interval.
func TestSMWMatchesDirectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		a := randomSPD(rng, n, 0.2)
		d := make([]float64, n)
		for j := 0; j < 1+rng.Intn(6); j++ {
			d[rng.Intn(n)] = 0.5 * rng.NormFloat64()
		}
		base, err := NewBandCholesky(a)
		if err != nil {
			return false
		}
		s, err := NewSMW(d, base.Solve)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		for _, frac := range []float64{0.2, 0.7, 0.95} {
			shift := frac // lambda can be +Inf (all-negative support)
			if lam := s.Lambda(); !math.IsInf(lam, 1) {
				shift = frac * lam
			}
			y, err := base.Solve(b)
			if err != nil {
				return false
			}
			if err := s.Correct(shift, y); err != nil {
				return false
			}
			c, err := NewBandCholesky(a.AddScaledDiag(-shift, d))
			if err != nil {
				return false
			}
			want, err := c.Solve(b)
			if err != nil {
				return false
			}
			for k := range want {
				if math.Abs(y[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// FuzzSMWGuard drives the capacitance-matrix guard with arbitrary
// shifts and support values: Correct must never panic, must reject
// non-finite shifts as invalid input, and on success must produce the
// direct solution to the accuracy contract whenever the shifted matrix
// still factors.
func FuzzSMWGuard(f *testing.F) {
	f.Add(0.5, 0.04, -0.03)
	f.Add(1e12, 0.04, 0.05)
	f.Add(-3.0, -0.01, -0.02)
	f.Add(math.Inf(1), 0.04, -0.03)
	f.Add(math.NaN(), 0.0, 0.0)
	a := gridLaplacian(5, 4)
	n := a.Rows()
	f.Fuzz(func(t *testing.T, shift, da, db float64) {
		d := make([]float64, n)
		d[3], d[11] = da, db
		base, err := NewBandCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSMW(d, base.Solve)
		if err != nil {
			return // degenerate support is allowed to fail setup
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = 1
		}
		y, err := base.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		cerr := s.Correct(shift, y)
		if !isFinite(shift) {
			if !errors.Is(cerr, tecerr.ErrInvalidInput) {
				t.Fatalf("non-finite shift %v: err = %v, want CodeInvalidInput", shift, cerr)
			}
			return
		}
		if cerr != nil {
			if !errors.Is(cerr, ErrSMWIllConditioned) {
				t.Fatalf("finite shift %v: unexpected error %v", shift, cerr)
			}
			return
		}
		for k, v := range y {
			if math.IsNaN(v) {
				t.Fatalf("shift %v: NaN at node %d after successful Correct", shift, k)
			}
		}
		c, err := NewBandCholesky(a.AddScaledDiag(-shift, d))
		if err != nil {
			return // guard accepted a shift outside the PD interval? only
			// possible beyond lambda, where Correct still computed the
			// (indefinite) algebraic solution; no accuracy contract there.
		}
		want, err := c.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if math.Abs(y[k]-want[k]) > 1e-6*(1+math.Abs(want[k])) {
				t.Fatalf("shift %v node %d: smw %v, direct %v", shift, k, y[k], want[k])
			}
		}
	})
}

// isFinite mirrors num.IsFinite without importing it into the fuzz path.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
