package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tecopt/internal/tecerr"
)

func TestBandCholeskySolvesGrid(t *testing.T) {
	a := gridLaplacian(15, 10)
	rng := rand.New(rand.NewSource(11))
	want := make([]float64, a.Rows())
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := a.MulVec(want)
	c, err := NewBandCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("Solve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBandCholeskyIndefinite(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddSym(0, 1, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	if _, err := NewBandCholesky(b.Build()); !errors.Is(err, ErrNotPositiveDefiniteBand) {
		t.Fatalf("err = %v, want not-PD", err)
	}
	if IsPositiveDefiniteBand(b.Build()) {
		t.Error("indefinite matrix reported PD")
	}
	if !IsPositiveDefiniteBand(gridLaplacian(4, 4)) {
		t.Error("SPD grid reported not PD")
	}
}

func TestBandCholeskyNonSquare(t *testing.T) {
	if _, err := NewBandCholesky(NewBuilder(2, 3).Build()); err == nil {
		t.Fatal("non-square accepted")
	}
}

// A wrong-length rhs must be a typed tecerr.CodeInvalidInput error on
// every solve entry point (PR-4 contract; these used to panic).
func TestBandCholeskyRhsLenTypedError(t *testing.T) {
	c, err := NewBandCholesky(gridLaplacian(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for name, solve := range map[string]func([]float64) ([]float64, error){
		"Solve":   c.Solve,
		"SolveL":  c.SolveL,
		"SolveLT": c.SolveLT,
	} {
		x, err := solve([]float64{1})
		if x != nil {
			t.Errorf("%s returned a vector alongside the error", name)
		}
		if !errors.Is(err, tecerr.ErrInvalidInput) {
			t.Errorf("%s err = %v, want CodeInvalidInput", name, err)
		}
	}
}

// Round trip: SolveL then SolveLT must agree with Solve.
func TestBandCholeskySolveLRoundTrip(t *testing.T) {
	a := gridLaplacian(6, 5)
	c, err := NewBandCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows())
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	want, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.SolveL(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.SolveLT(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("round trip[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBandCholeskyDiagonalMatrix(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 0, 2)
	b.Add(1, 1, 4)
	b.Add(2, 2, 8)
	c, err := NewBandCholesky(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if c.BandwidthUsed() != 0 {
		t.Fatalf("bandwidth = %d, want 0", c.BandwidthUsed())
	}
	got, err := c.Solve([]float64{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if math.Abs(v-1) > 1e-15 {
			t.Fatalf("x[%d] = %v, want 1", i, v)
		}
	}
}

// Property: BandCholesky agrees with CG on random SPD systems, with and
// without RCM preordering.
func TestBandCholeskyMatchesCGProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		a := randomSPD(rng, n, 0.25)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		cg, err := SolveCG(a, b, CGOptions{Tol: 1e-13})
		if err != nil {
			return false
		}
		direct, err := NewBandCholesky(a)
		if err != nil {
			return false
		}
		x, err := direct.Solve(b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-cg.X[i]) > 1e-6*(1+math.Abs(cg.X[i])) {
				return false
			}
		}
		// RCM-permuted variant.
		perm := RCM(a)
		ap := a.Permute(perm)
		dp, err := NewBandCholesky(ap)
		if err != nil {
			return false
		}
		xpp, err := dp.Solve(PermuteVec(perm, b))
		if err != nil {
			return false
		}
		xp := PermuteVec(InvertPerm(perm), xpp)
		for i := range xp {
			if math.Abs(xp[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// RCM should shrink the band cost on scrambled grids.
func TestBandCholeskyRCMShrinksBandwidth(t *testing.T) {
	a := gridLaplacian(20, 20)
	rng := rand.New(rand.NewSource(13))
	scrambled := a.Permute(rng.Perm(a.Rows()))
	perm := RCM(scrambled)
	direct, err := NewBandCholesky(scrambled.Permute(perm))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewBandCholesky(scrambled)
	if err != nil {
		t.Fatal(err)
	}
	if direct.BandwidthUsed() >= naive.BandwidthUsed() {
		t.Fatalf("RCM bandwidth %d >= naive %d", direct.BandwidthUsed(), naive.BandwidthUsed())
	}
}
