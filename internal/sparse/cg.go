package sparse

import (
	"context"
	"errors"
	"math"

	"tecopt/internal/faults"
	"tecopt/internal/num"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

// ErrNotConverged is returned when an iterative solve fails to reach the
// requested tolerance within its iteration budget. Near the thermal
// runaway limit lambda_m the system G - i*D becomes arbitrarily
// ill-conditioned, so callers must handle this error rather than assume
// convergence. It carries tecerr.CodeDiverged.
var ErrNotConverged error = tecerr.New(tecerr.CodeDiverged, "sparse.cg",
	"sparse: conjugate gradient did not converge")

// ErrBreakdown is returned when CG encounters a non-positive curvature
// direction, which signals that the operator is not positive definite
// (e.g. the supply current exceeded lambda_m). It carries
// tecerr.CodeNotPD.
var ErrBreakdown error = tecerr.New(tecerr.CodeNotPD, "sparse.cg",
	"sparse: conjugate gradient breakdown (matrix not positive definite)")

// Preconditioner applies z = M^{-1} r for a symmetric positive definite
// approximation M of the system matrix.
type Preconditioner interface {
	Apply(z, r []float64)
}

// IdentityPreconditioner performs no preconditioning.
type IdentityPreconditioner struct{}

// Apply copies r into z.
func (IdentityPreconditioner) Apply(z, r []float64) { copy(z, r) }

// JacobiPreconditioner scales by the inverse diagonal of the matrix.
type JacobiPreconditioner struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the matrix diagonal.
// Zero diagonal entries are treated as 1 to stay well-defined.
func NewJacobi(a *CSR) *JacobiPreconditioner {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if num.IsZero(v) {
			inv[i] = 1
		} else {
			inv[i] = 1 / v
		}
	}
	return &JacobiPreconditioner{invDiag: inv}
}

// Apply computes z = D^{-1} r.
func (p *JacobiPreconditioner) Apply(z, r []float64) {
	for i, v := range r {
		z[i] = v * p.invDiag[i]
	}
}

// CGOptions configures a conjugate-gradient solve.
type CGOptions struct {
	// Tol is the relative residual tolerance ||r|| <= Tol * ||b||.
	// Defaults to 1e-10.
	Tol float64
	// MaxIter caps the iteration count. Defaults to 10*n.
	MaxIter int
	// Precond supplies the preconditioner. Defaults to Jacobi.
	Precond Preconditioner
	// X0 is the starting guess (zero vector when nil).
	X0 []float64
	// DivergenceWindow is how many consecutive residual-growth
	// iterations the divergence guard tolerates before aborting with a
	// tecerr.CodeDiverged error (the residual must also sit well above
	// its best value, so preconditioned non-monotonicity on healthy
	// systems never trips it). <= 0 selects the default of 25.
	DivergenceWindow int
}

// CGResult reports solve statistics.
type CGResult struct {
	X          []float64
	Iterations int
	Residual   float64 // final relative residual
}

// SolveCG solves the symmetric positive definite system A x = b with the
// preconditioned conjugate gradient method. The result always carries
// the iteration count and final relative residual (even on a
// non-convergence or divergence error); when observability is enabled
// they are also reported under "sparse.cg.*".
func SolveCG(a *CSR, b []float64, opt CGOptions) (*CGResult, error) {
	return SolveCGCtx(context.Background(), a, b, opt)
}

// SolveCGCtx is SolveCG with cancellation: the iteration loop polls ctx
// and aborts with a tecerr.CodeCancelled error carrying the partial
// iterate.
func SolveCGCtx(ctx context.Context, a *CSR, b []float64, opt CGOptions) (*CGResult, error) {
	r := obs.Enabled()
	if r == nil {
		return solveCG(ctx, a, b, opt)
	}
	start := r.Now()
	res, err := solveCG(ctx, a, b, opt)
	r.Counter("sparse.cg.solves").Inc()
	r.Histogram("sparse.cg.solve_ns").Observe(clampNS(r.Now() - start))
	if res != nil {
		r.Histogram("sparse.cg.iterations").Observe(uint64(res.Iterations))
		r.Gauge("sparse.cg.last_iterations").Set(int64(res.Iterations))
		r.FloatGauge("sparse.cg.last_residual").Set(res.Residual)
	}
	switch {
	case errors.Is(err, ErrNotConverged):
		r.Counter("sparse.cg.not_converged").Inc()
	case errors.Is(err, ErrBreakdown):
		r.Counter("sparse.cg.breakdowns").Inc()
	case errors.Is(err, tecerr.ErrCancelled):
		r.Counter("sparse.cg.cancelled").Inc()
	case errors.Is(err, tecerr.ErrDiverged):
		r.Counter("sparse.cg.diverged").Inc()
	}
	return res, err
}

// solveCG is the uninstrumented CG implementation.
func solveCG(ctx context.Context, a *CSR, b []float64, opt CGOptions) (*CGResult, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "sparse.cg",
			"sparse: CG needs a square matrix, have %dx%d", n, a.Cols())
	}
	if len(b) != n {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "sparse.cg",
			"sparse: CG rhs length %d, want %d", len(b), n)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
		if opt.MaxIter < 100 {
			opt.MaxIter = 100
		}
	}
	if opt.Precond == nil {
		opt.Precond = NewJacobi(a)
	}
	if opt.DivergenceWindow <= 0 {
		opt.DivergenceWindow = 25
	}

	x := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "sparse.cg",
				"sparse: CG x0 length %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	}

	r := make([]float64, n)
	a.MulVecTo(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	normB := norm2(b)
	if num.IsZero(normB) {
		return &CGResult{X: x, Iterations: 0, Residual: 0}, nil
	}
	if norm2(r)/normB <= opt.Tol {
		return &CGResult{X: x, Iterations: 0, Residual: norm2(r) / normB}, nil
	}

	z := make([]float64, n)
	opt.Precond.Apply(z, r)
	p := make([]float64, n)
	copy(p, z)
	rz := dot(r, z)
	ap := make([]float64, n)

	// Divergence-guard state: the best residual seen and the length of
	// the current run of consecutive residual increases.
	best := math.Inf(1)
	prev := math.Inf(1)
	growth := 0

	for k := 1; k <= opt.MaxIter; k++ {
		if k&31 == 0 {
			if err := ctx.Err(); err != nil {
				return &CGResult{X: x, Iterations: k - 1, Residual: prev},
					tecerr.Cancelled("sparse.cg", err)
			}
		}
		if err := faults.Check(faults.SiteCGIteration); err != nil {
			return &CGResult{X: x, Iterations: k - 1, Residual: prev}, err
		}
		a.MulVecTo(ap, p)
		pap := dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return nil, ErrBreakdown
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		res := faults.Float64(faults.SiteCGResidual, norm2(r)/normB)
		if res <= opt.Tol {
			return &CGResult{X: x, Iterations: k, Residual: res}, nil
		}
		// Divergence guard. A NaN/Inf residual can never recover; a long
		// run of strictly growing residuals sitting far above the best
		// one means the iteration is actively diverging (ill-conditioned
		// system near lambda_m, or a perturbed operator) and burning the
		// remaining budget would be pointless.
		if math.IsNaN(res) || math.IsInf(res, 0) {
			return &CGResult{X: x, Iterations: k, Residual: res},
				tecerr.Newf(tecerr.CodeDiverged, "sparse.cg",
					"sparse: CG residual became %g at iteration %d (best %.3g)", res, k, best)
		}
		if res > prev {
			growth++
		} else {
			growth = 0
		}
		if res < best {
			best = res
		}
		prev = res
		if growth >= opt.DivergenceWindow && res > 10*best {
			return &CGResult{X: x, Iterations: k, Residual: res},
				tecerr.Newf(tecerr.CodeDiverged, "sparse.cg",
					"sparse: CG diverging: residual grew for %d consecutive iterations to %.3g at iteration %d (best %.3g)",
					growth, res, k, best)
		}
		opt.Precond.Apply(z, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return &CGResult{X: x, Iterations: opt.MaxIter, Residual: norm2(r) / normB}, ErrNotConverged
}

// clampNS converts a clock difference to a histogram value, flooring
// negative diffs (possible only with a misbehaving injected clock) at
// zero.
func clampNS(d int64) uint64 {
	if d < 0 {
		return 0
	}
	return uint64(d)
}

func dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func norm2(x []float64) float64 {
	return math.Sqrt(dot(x, x))
}
