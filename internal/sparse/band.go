package sparse

import (
	"math"

	"tecopt/internal/faults"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

// BandCholesky is an exact Cholesky factorization of a symmetric positive
// definite matrix stored in lower-band form. Because Cholesky fill is
// confined to the band, this is a direct method: factorization costs
// O(n*bw^2) and each solve O(n*bw). Combined with an RCM preordering it
// is the workhorse behind the lambda_m binary search (each probe of
// "is G - i*D positive definite?" is one factorization attempt) and the
// repeated steady-state solves of the current optimizer.
type BandCholesky struct {
	n, bw int
	// ab stores the lower band of L row-major: row i occupies
	// ab[i*(bw+1) : (i+1)*(bw+1)], with column j at offset j-i+bw
	// (so the diagonal sits at offset bw).
	ab []float64
}

// NewBandCholesky factors the symmetric matrix a (only the lower triangle
// is read). It returns mat-level ErrBreakdown semantics via
// ErrNotPositiveDefiniteBand when a pivot is non-positive. When
// observability is enabled the factorization time and outcome are
// reported under "sparse.band.*" (a failed attempt is a legitimate
// outcome: the runaway search probes currents beyond lambda_m).
func NewBandCholesky(a *CSR) (*BandCholesky, error) {
	r := obs.Enabled()
	if r == nil {
		return newBandCholesky(a)
	}
	start := r.Now()
	c, err := newBandCholesky(a)
	r.Counter("sparse.band.factors").Inc()
	r.Histogram("sparse.band.factor_ns").Observe(clampNS(r.Now() - start))
	if err != nil {
		r.Counter("sparse.band.factor_failures").Inc()
	} else {
		r.Gauge("sparse.band.bandwidth").Set(int64(c.bw))
	}
	return c, err
}

// newBandCholesky is the uninstrumented factorization.
func newBandCholesky(a *CSR) (*BandCholesky, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "sparse.band",
			"sparse: BandCholesky needs a square matrix, have %dx%d", n, a.Cols())
	}
	bw := Bandwidth(a)
	c := &BandCholesky{n: n, bw: bw, ab: make([]float64, n*(bw+1))}
	// Load the lower band.
	for i := 0; i < n; i++ {
		cols, vals := a.RowNNZ(i)
		for k, j := range cols {
			if j <= i {
				c.ab[i*(bw+1)+j-i+bw] = vals[k]
			}
		}
	}
	// Chaos hook: perturb the loaded matrix entries before factoring.
	faults.Perturb(faults.SiteBandMatrix, c.ab)
	// In-place banded Cholesky.
	w := bw + 1
	for j := 0; j < n; j++ {
		// Pivot.
		d := c.ab[j*w+bw]
		lo := j - bw
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < j; k++ {
			v := c.ab[j*w+k-j+bw]
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefiniteBand
		}
		piv := math.Sqrt(d)
		c.ab[j*w+bw] = piv
		// Column below the pivot (rows j+1 .. j+bw).
		hi := j + bw
		if hi >= n {
			hi = n - 1
		}
		for i := j + 1; i <= hi; i++ {
			s := c.ab[i*w+j-i+bw]
			klo := i - bw
			if klo < lo {
				klo = lo
			}
			if klo < 0 {
				klo = 0
			}
			for k := klo; k < j; k++ {
				s -= c.ab[i*w+k-i+bw] * c.ab[j*w+k-j+bw]
			}
			c.ab[i*w+j-i+bw] = s / piv
		}
	}
	return c, nil
}

// ErrNotPositiveDefiniteBand reports a failed banded factorization. It
// carries tecerr.CodeNotPD.
var ErrNotPositiveDefiniteBand error = tecerr.New(tecerr.CodeNotPD, "sparse.band",
	"sparse: matrix is not positive definite")

// Size returns the order of the factored matrix.
func (c *BandCholesky) Size() int { return c.n }

// BandwidthUsed returns the (half) bandwidth of the stored factor.
func (c *BandCholesky) BandwidthUsed() int { return c.bw }

// Solve solves A x = b. A wrong-length rhs is reported as a
// tecerr.CodeInvalidInput error (PR-4 contract: the solve stack returns
// typed errors instead of panicking on caller mistakes).
func (c *BandCholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "sparse.band",
			"sparse: BandCholesky.Solve rhs length %d, want %d", len(b), c.n)
	}
	if r := obs.Enabled(); r != nil {
		start := r.Now()
		defer func() {
			r.Counter("sparse.band.solves").Inc()
			r.Histogram("sparse.band.solve_ns").Observe(clampNS(r.Now() - start))
		}()
	}
	n, bw, w := c.n, c.bw, c.bw+1
	x := make([]float64, n)
	copy(x, b)
	// Forward: L y = b.
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		s := x[i]
		for k := lo; k < i; k++ {
			s -= c.ab[i*w+k-i+bw] * x[k]
		}
		x[i] = s / c.ab[i*w+bw]
	}
	// Backward: L' x = y.
	for i := n - 1; i >= 0; i-- {
		hi := i + bw
		if hi >= n {
			hi = n - 1
		}
		s := x[i]
		for k := i + 1; k <= hi; k++ {
			s -= c.ab[k*w+i-k+bw] * x[k]
		}
		x[i] = s / c.ab[i*w+bw]
	}
	return x, nil
}

// SolveL solves the lower-triangular system L y = b with the factor L.
// Together with SolveLT it lets callers apply L^{-1} and L^{-T}
// separately — needed for the symmetric reduction of generalized
// eigenproblems (see internal/eigen and core.RunawayLimitEigen). A
// wrong-length rhs is a tecerr.CodeInvalidInput error.
func (c *BandCholesky) SolveL(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "sparse.band",
			"sparse: BandCholesky.SolveL rhs length %d, want %d", len(b), c.n)
	}
	n, bw, w := c.n, c.bw, c.bw+1
	y := make([]float64, n)
	copy(y, b)
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		s := y[i]
		for k := lo; k < i; k++ {
			s -= c.ab[i*w+k-i+bw] * y[k]
		}
		y[i] = s / c.ab[i*w+bw]
	}
	return y, nil
}

// SolveLT solves the upper-triangular system L' x = b with the factor L.
// A wrong-length rhs is a tecerr.CodeInvalidInput error.
func (c *BandCholesky) SolveLT(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "sparse.band",
			"sparse: BandCholesky.SolveLT rhs length %d, want %d", len(b), c.n)
	}
	n, bw, w := c.n, c.bw, c.bw+1
	x := make([]float64, n)
	copy(x, b)
	for i := n - 1; i >= 0; i-- {
		hi := i + bw
		if hi >= n {
			hi = n - 1
		}
		s := x[i]
		for k := i + 1; k <= hi; k++ {
			s -= c.ab[k*w+i-k+bw] * x[k]
		}
		x[i] = s / c.ab[i*w+bw]
	}
	return x, nil
}

// IsPositiveDefiniteBand reports whether the symmetric matrix a is
// positive definite via a banded factorization attempt. This is the
// paper's Cholesky-based PD test, made O(n*bw^2) by band storage.
func IsPositiveDefiniteBand(a *CSR) bool {
	_, err := NewBandCholesky(a)
	return err == nil
}
