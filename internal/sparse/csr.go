// Package sparse provides the sparse linear-algebra substrate for the
// thermal network solvers: a COO assembly builder, CSR storage with
// matrix-vector products, a preconditioned conjugate-gradient solver
// (Jacobi and incomplete-Cholesky preconditioners), and reverse
// Cuthill-McKee ordering.
//
// The compact thermal model of a 12x12-tile package has a few hundred
// nodes, which the dense path in package mat handles easily; the
// fine-grid reference solver (internal/refsolver) discretizes the same
// package at 4-8x resolution and produces systems with tens of thousands
// of unknowns, which is where this package earns its keep.
package sparse

import (
	"fmt"
	"sort"

	"tecopt/internal/num"
)

// Coord is a single (row, col, value) assembly entry.
type Coord struct {
	Row, Col int
	Val      float64
}

// Builder accumulates COO triplets; duplicate coordinates are summed when
// the builder is compiled to CSR, which matches finite-volume stamping
// where several conductances contribute to one matrix entry.
type Builder struct {
	rows, cols int
	entries    []Coord
}

// NewBuilder returns a builder for a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", rows, cols))
	}
	return &Builder{rows: rows, cols: cols}
}

// Add accumulates v at (i, j).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, b.rows, b.cols))
	}
	if num.IsZero(v) {
		return
	}
	b.entries = append(b.entries, Coord{i, j, v})
}

// AddSym accumulates v at (i, j) and (j, i); the diagonal is added once.
func (b *Builder) AddSym(i, j int, v float64) {
	b.Add(i, j, v)
	if i != j {
		b.Add(j, i, v)
	}
}

// NNZEstimate returns the number of accumulated triplets (before
// duplicate merging).
func (b *Builder) NNZEstimate() int { return len(b.entries) }

// Build compiles the triplets into CSR form, summing duplicates and
// dropping entries that cancel to exactly zero.
func (b *Builder) Build() *CSR {
	es := make([]Coord, len(b.entries))
	copy(es, b.entries)
	sort.Slice(es, func(x, y int) bool {
		if es[x].Row != es[y].Row {
			return es[x].Row < es[y].Row
		}
		return es[x].Col < es[y].Col
	})
	rowPtr := make([]int, b.rows+1)
	colIdx := make([]int, 0, len(es))
	vals := make([]float64, 0, len(es))
	for k := 0; k < len(es); {
		r, c := es[k].Row, es[k].Col
		var s float64
		for k < len(es) && es[k].Row == r && es[k].Col == c {
			s += es[k].Val
			k++
		}
		if !num.IsZero(s) {
			colIdx = append(colIdx, c)
			vals = append(vals, s)
			rowPtr[r+1]++
		}
	}
	for i := 0; i < b.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return &CSR{rows: b.rows, cols: b.cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the element at (i, j) — zero when not stored. O(log nnz_row).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.vals[k]
	}
	return 0
}

// MulVec computes y = A x.
func (m *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, m.rows)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = A x into a caller-provided slice.
func (m *CSR) MulVecTo(y, x []float64) {
	if len(x) != m.cols || len(y) != m.rows {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch %dx%d with x=%d y=%d", m.rows, m.cols, len(x), len(y)))
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		y[i] = s
	}
}

// Diag returns a copy of the main diagonal.
func (m *CSR) Diag() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// RowNNZ returns the stored column indices and values of row i.
// The returned slices alias internal storage and must not be modified.
func (m *CSR) RowNNZ(i int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// IsSymmetric reports whether the matrix equals its transpose within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		cols, vals := m.RowNNZ(i)
		for k, j := range cols {
			d := vals[k] - m.At(j, i)
			if d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}

// Permute returns P A P' for the symmetric permutation perm, where
// perm[old] = new. Used with RCM ordering to shrink factorization fill.
func (m *CSR) Permute(perm []int) *CSR {
	if len(perm) != m.rows || m.rows != m.cols {
		panic("sparse: Permute needs a square matrix and a full permutation")
	}
	b := NewBuilder(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		cols, vals := m.RowNNZ(i)
		for k, j := range cols {
			b.Add(perm[i], perm[j], vals[k])
		}
	}
	return b.Build()
}

// AddScaledDiag returns A + s*DIAG(d) as a new CSR matrix. The cooling
// optimizer uses it to form G - i*D without re-stamping the network.
func (m *CSR) AddScaledDiag(s float64, d []float64) *CSR {
	if m.rows != m.cols || len(d) != m.rows {
		panic("sparse: AddScaledDiag dimension mismatch")
	}
	b := NewBuilder(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		cols, vals := m.RowNNZ(i)
		for k, j := range cols {
			b.Add(i, j, vals[k])
		}
	}
	for i, v := range d {
		if !num.IsZero(v) {
			b.Add(i, i, s*v)
		}
	}
	return b.Build()
}
