package sparse

import (
	"math"

	"tecopt/internal/eigen"
	"tecopt/internal/faults"
	"tecopt/internal/mat"
	"tecopt/internal/num"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

// SMW applies Sherman-Morrison-Woodbury corrections for shifted systems
//
//	(G - i * diag(d)) x = b
//
// where d is supported on few entries (for the TEC model: two rows per
// device), so diag(d) = U S U' is a rank-m update of a fixed G. Given a
// solver for G (one factorization, reused for every current), each
// correction costs two m x m matrix-vector products, one n x m product
// and one base solve — versus a full O(n*bw^2) refactorization per
// current on the direct path.
//
// Construction precomputes, once per system:
//
//	W  = G^{-1} U                (m base solves)
//	M  = U' W = U' G^{-1} U      (m x m, symmetric positive definite)
//	M  = L L'                    (dense Cholesky)
//	T  = L' S L = Q Mu Q'        (symmetric eigendecomposition)
//
// T is similar to S*M (L' (S M) L^{-T} = T), so the capacitance matrix
// of the Woodbury identity diagonalizes for every shift at once:
//
//	(I - i*S*M)^{-1} = L^{-T} Q diag(1/(1 - i*mu_j)) Q' L'
//
// and the per-current correction is
//
//	x = y + i * W * P2 * diag(1/(1 - i*mu_j)) * P1 * t,
//	y = G^{-1} b,  t = y[idx],  P1 = Q' L' S,  P2 = L^{-T} Q.
//
// The eigenvalues mu_j are exactly those of G^{-1} diag(d), so the
// largest one also yields the thermal-runaway limit lambda_m = 1/mu_max
// (Theorem 1 via the spectral reduction of internal/core) for free.
type SMW struct {
	n   int
	idx []int // support of d: the rows/columns of the update
	// w holds the m columns of W = G^{-1} U, each of length n.
	w [][]float64
	// mu holds the eigenvalues of the reduced pencil, ascending.
	mu []float64
	// p1, p2 are the m x m projection factors (row-major): the
	// correction is x = y + i * W * p2 * diag(1/(1-i*mu)) * p1 * y[idx].
	p1, p2 []float64
	// gapTol is the relative conditioning floor for the diagonal factors
	// 1 - i*mu_j; a gap below it means the capacitance matrix is too
	// close to singular for the correction to hold full accuracy.
	gapTol float64
}

// ErrSMWIllConditioned reports that a requested shift puts the
// capacitance matrix too close to singular (the operating point is
// within the conditioning guard of 1/mu_j for some j — near the runaway
// limit lambda_m in the thermal model), so the Woodbury correction
// cannot deliver full accuracy and the caller should fall back to a
// direct solve. It carries tecerr.CodeDiverged.
var ErrSMWIllConditioned error = tecerr.New(tecerr.CodeDiverged, "sparse.smw",
	"sparse: SMW capacitance matrix ill-conditioned at this shift")

// defaultSMWGapTol keeps the correction's relative error near machine
// epsilon divided by the gap below ~1e-9, the equivalence tolerance the
// property tests assert against the direct path.
const defaultSMWGapTol = 1e-7

// NewSMW builds the correction data for the diagonal update d (length
// n), using solve to apply G^{-1} (typically a banded Cholesky solve of
// the unshifted base matrix). solve is called m times with unit vectors
// during construction and never retained. A zero-support d yields an
// SMW whose Correct is the identity and whose Lambda is +Inf.
func NewSMW(d []float64, solve func([]float64) ([]float64, error)) (*SMW, error) {
	n := len(d)
	var idx []int
	for k, v := range d {
		if !num.IsZero(v) {
			idx = append(idx, k)
		}
	}
	s := &SMW{n: n, idx: idx, gapTol: defaultSMWGapTol}
	m := len(idx)
	if r := obs.Enabled(); r != nil {
		start := r.Now()
		defer func() {
			r.Counter("sparse.smw.setups").Inc()
			r.Histogram("sparse.smw.setup_ns").Observe(clampNS(r.Now() - start))
			r.Gauge("sparse.smw.rank").Set(int64(m))
		}()
	}
	if m == 0 {
		return s, nil
	}

	// W = G^{-1} U, one base solve per support column.
	s.w = make([][]float64, m)
	e := make([]float64, n)
	for j, k := range idx {
		e[k] = 1
		col, err := solve(e)
		if err != nil {
			return nil, tecerr.Wrapf(tecerr.CodeOf(err), "sparse.smw", err,
				"sparse: SMW base solve for support column %d failed", k)
		}
		if len(col) != n {
			return nil, tecerr.Newf(tecerr.CodeInternal, "sparse.smw",
				"sparse: SMW base solve returned length %d, want %d", len(col), n)
		}
		e[k] = 0
		s.w[j] = col
	}

	// M = U' W, symmetrized: it is a Gram matrix of G^{-1}, so any
	// asymmetry is pure rounding from the base solves.
	mm := mat.NewDense(m, m)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			mm.Set(a, b, s.w[b][idx[a]])
		}
	}
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			v := 0.5 * (mm.At(a, b) + mm.At(b, a))
			mm.Set(a, b, v)
			mm.Set(b, a, v)
		}
	}
	chol, err := mat.NewCholesky(mm)
	if err != nil {
		return nil, tecerr.Wrapf(tecerr.CodeInternal, "sparse.smw", err,
			"sparse: SMW projected matrix U' G^{-1} U not positive definite")
	}
	l := chol.L()

	// T = L' S L with S = diag(d[idx]).
	t := mat.NewDense(m, m)
	for a := 0; a < m; a++ {
		for b := 0; b <= a; b++ {
			var v float64
			for k := 0; k < m; k++ {
				v += l.At(k, a) * d[idx[k]] * l.At(k, b)
			}
			t.Set(a, b, v)
			t.Set(b, a, v)
		}
	}
	mu, q, err := eigen.SymEig(t, true)
	if err != nil {
		return nil, tecerr.Wrapf(tecerr.CodeInternal, "sparse.smw", err,
			"sparse: SMW eigendecomposition of the reduced pencil failed")
	}
	s.mu = mu

	// P1 = Q' L' S: p1[j][a] = d[idx[a]] * sum_k Q[k][j] L[a][k].
	s.p1 = make([]float64, m*m)
	for j := 0; j < m; j++ {
		for a := 0; a < m; a++ {
			var v float64
			for k := 0; k <= a; k++ { // L is lower triangular
				v += q.At(k, j) * l.At(a, k)
			}
			s.p1[j*m+a] = v * d[idx[a]]
		}
	}
	// P2 = L^{-T} Q, column by column via back substitution.
	s.p2 = make([]float64, m*m)
	col := make([]float64, m)
	for j := 0; j < m; j++ {
		for a := 0; a < m; a++ {
			col[a] = q.At(a, j)
		}
		for a := m - 1; a >= 0; a-- {
			v := col[a]
			for k := a + 1; k < m; k++ {
				v -= l.At(k, a) * col[k]
			}
			col[a] = v / l.At(a, a)
		}
		for a := 0; a < m; a++ {
			s.p2[a*m+j] = col[a]
		}
	}
	return s, nil
}

// Rank returns the update rank m (the support size of d).
func (s *SMW) Rank() int { return len(s.idx) }

// MuMax returns the largest eigenvalue of G^{-1} diag(d), or 0 when the
// update is empty.
func (s *SMW) MuMax() float64 {
	if len(s.mu) == 0 {
		return 0
	}
	return s.mu[len(s.mu)-1]
}

// Lambda returns the spectral shift limit 1/mu_max: G - i*diag(d) is
// positive definite for 0 <= i < Lambda and indefinite beyond it
// (Theorem 1). +Inf when mu_max <= 0 (no positive support: the system
// cannot run away).
func (s *SMW) Lambda() float64 {
	muMax := s.MuMax()
	if muMax <= 0 {
		return math.Inf(1)
	}
	return 1 / muMax
}

// Correct turns y = G^{-1} b into (G - i*diag(d))^{-1} b in place.
// It returns ErrSMWIllConditioned when the shift lands within the
// conditioning guard of a capacitance-matrix singularity (callers fall
// back to a direct factorization of the shifted matrix) and a
// tecerr.CodeInvalidInput error for a non-finite shift or wrong-length
// vector. Correct is safe for concurrent use: the precomputed data is
// read-only and all scratch is local.
func (s *SMW) Correct(i float64, y []float64) error {
	if !num.IsFinite(i) {
		return tecerr.Newf(tecerr.CodeInvalidInput, "sparse.smw",
			"sparse: non-finite SMW shift %g", i)
	}
	if len(y) != s.n {
		return tecerr.Newf(tecerr.CodeInvalidInput, "sparse.smw",
			"sparse: SMW vector length %d, want %d", len(y), s.n)
	}
	m := len(s.idx)
	if m == 0 || num.IsZero(i) {
		return nil
	}
	// Conditioning guard: every diagonal factor 1 - i*mu_j must sit a
	// relative gapTol away from zero, or the correction loses the
	// accuracy contract. The margin passes through the chaos filter so
	// fault-injection tests can force the fallback path.
	minGap := math.Inf(1)
	for _, mu := range s.mu {
		gap := math.Abs(1-i*mu) / (1 + math.Abs(i*mu))
		if gap < minGap {
			minGap = gap
		}
	}
	minGap = faults.Float64(faults.SiteSMWGuard, minGap)
	if math.IsNaN(minGap) || minGap < s.gapTol {
		if r := obs.Enabled(); r != nil {
			r.Counter("sparse.smw.guard_trips").Inc()
		}
		return ErrSMWIllConditioned
	}
	if r := obs.Enabled(); r != nil {
		start := r.Now()
		defer func() {
			r.Counter("sparse.smw.corrections").Inc()
			r.Histogram("sparse.smw.correct_ns").Observe(clampNS(r.Now() - start))
		}()
	}
	// u = P1 * y[idx], scaled by the diagonalized resolvent.
	u := make([]float64, m)
	for j := 0; j < m; j++ {
		var v float64
		row := s.p1[j*m : (j+1)*m]
		for a, k := range s.idx {
			v += row[a] * y[k]
		}
		u[j] = v * i / (1 - i*s.mu[j])
	}
	// c = P2 * u, then y += W * c.
	for a := 0; a < m; a++ {
		var v float64
		row := s.p2[a*m : (a+1)*m]
		for j := 0; j < m; j++ {
			v += row[j] * u[j]
		}
		if num.IsZero(v) {
			continue
		}
		col := s.w[a]
		for k := range y {
			y[k] += v * col[k]
		}
	}
	return nil
}
