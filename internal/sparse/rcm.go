package sparse

import (
	"sort"
)

// RCM computes a reverse Cuthill-McKee ordering for the symmetric sparsity
// pattern of a. The returned slice maps old index -> new index. Applying
// it with Permute concentrates the nonzeros near the diagonal, which
// improves cache behaviour of SpMV and the quality of IC(0).
//
// Disconnected components are ordered one after another, each started from
// a pseudo-peripheral vertex found by repeated BFS.
func RCM(a *CSR) []int {
	n := a.Rows()
	adj := adjacency(a)
	deg := make([]int, n)
	for i := range adj {
		deg[i] = len(adj[i])
	}

	visited := make([]bool, n)
	order := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(adj, deg, visited, start)
		// Cuthill-McKee BFS from root, neighbors by increasing degree.
		queue := []int{root}
		visited[root] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			next := make([]int, 0, len(adj[u]))
			for _, v := range adj[u] {
				if !visited[v] {
					visited[v] = true
					next = append(next, v)
				}
			}
			sort.Slice(next, func(x, y int) bool { return deg[next[x]] < deg[next[y]] })
			queue = append(queue, next...)
		}
	}

	// Reverse and invert into old->new form.
	perm := make([]int, n)
	for newIdx, oldIdx := range order {
		perm[oldIdx] = n - 1 - newIdx
	}
	return perm
}

// adjacency extracts the symmetric adjacency lists (off-diagonal pattern).
func adjacency(a *CSR) [][]int {
	n := a.Rows()
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		cols, _ := a.RowNNZ(i)
		for _, j := range cols {
			if j != i {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}

// pseudoPeripheral finds a vertex of (locally) maximal eccentricity in the
// component containing start, using the standard alternating-BFS heuristic.
func pseudoPeripheral(adj [][]int, deg []int, visited []bool, start int) int {
	root := start
	lastEcc := -1
	for {
		levels, ecc := bfsLevels(adj, visited, root)
		if ecc <= lastEcc {
			return root
		}
		lastEcc = ecc
		// Pick the minimum-degree vertex in the last level.
		best, bestDeg := root, int(^uint(0)>>1)
		for v, lv := range levels {
			if lv == ecc && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if best == root {
			return root
		}
		root = best
	}
}

// bfsLevels returns the BFS level of each reachable unvisited vertex
// (-1 for unreachable) and the eccentricity of root within the component.
func bfsLevels(adj [][]int, visited []bool, root int) (map[int]int, int) {
	levels := map[int]int{root: 0}
	queue := []int{root}
	ecc := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if visited[v] {
				continue
			}
			if _, ok := levels[v]; !ok {
				levels[v] = levels[u] + 1
				if levels[v] > ecc {
					ecc = levels[v]
				}
				queue = append(queue, v)
			}
		}
	}
	return levels, ecc
}

// Bandwidth returns the maximum |i-j| over stored entries, a quick metric
// for how effective an ordering is.
func Bandwidth(a *CSR) int {
	bw := 0
	for i := 0; i < a.Rows(); i++ {
		cols, _ := a.RowNNZ(i)
		for _, j := range cols {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// InvertPerm returns the inverse permutation: if perm[old] = new then
// InvertPerm(perm)[new] = old.
func InvertPerm(perm []int) []int {
	inv := make([]int, len(perm))
	for oldIdx, newIdx := range perm {
		inv[newIdx] = oldIdx
	}
	return inv
}

// PermuteVec returns the vector x reordered so that out[perm[i]] = x[i].
func PermuteVec(perm []int, x []float64) []float64 {
	out := make([]float64, len(x))
	for i, p := range perm {
		out[p] = x[i]
	}
	return out
}
