package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tecopt/internal/num"
)

func TestRCMReducesBandwidthOnGrid(t *testing.T) {
	// A grid numbered in a scrambled order has terrible bandwidth; RCM
	// should restore something close to the natural nx bandwidth.
	nx, ny := 12, 12
	a := gridLaplacian(nx, ny)
	// Scramble with a random permutation first.
	rng := rand.New(rand.NewSource(9))
	scramble := rng.Perm(nx * ny)
	scrambled := a.Permute(scramble)
	before := Bandwidth(scrambled)
	perm := RCM(scrambled)
	after := Bandwidth(scrambled.Permute(perm))
	if after >= before {
		t.Fatalf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
	if after > 3*nx {
		t.Fatalf("RCM bandwidth %d far above expected O(nx)=%d", after, nx)
	}
}

func TestRCMIsPermutation(t *testing.T) {
	a := gridLaplacian(7, 5)
	perm := RCM(a)
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			t.Fatalf("invalid permutation %v", perm)
		}
		seen[p] = true
	}
}

func TestRCMDisconnectedComponents(t *testing.T) {
	// Two disjoint 2-node components.
	b := NewBuilder(4, 4)
	b.AddSym(0, 1, -1)
	b.Add(0, 0, 1.5)
	b.Add(1, 1, 1.5)
	b.AddSym(2, 3, -1)
	b.Add(2, 2, 1.5)
	b.Add(3, 3, 1.5)
	perm := RCM(b.Build())
	seen := make([]bool, 4)
	for _, p := range perm {
		seen[p] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d missing from permutation %v", i, perm)
		}
	}
}

func TestInvertPerm(t *testing.T) {
	perm := []int{2, 0, 1}
	inv := InvertPerm(perm)
	for oldIdx, newIdx := range perm {
		if inv[newIdx] != oldIdx {
			t.Fatalf("InvertPerm wrong: %v -> %v", perm, inv)
		}
	}
}

func TestPermuteVec(t *testing.T) {
	x := []float64{10, 20, 30}
	perm := []int{2, 0, 1}
	got := PermuteVec(perm, x)
	want := []float64{20, 30, 10}
	for i := range want {
		if !num.ExactEqual(got[i], want[i]) {
			t.Fatalf("PermuteVec = %v, want %v", got, want)
		}
	}
}

// Property: solving the permuted system and permuting back gives the
// original solution.
func TestRCMSolveEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		a := randomSPD(rng, n, 0.2)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		direct, err := SolveCG(a, b, CGOptions{Tol: 1e-12})
		if err != nil {
			return false
		}
		perm := RCM(a)
		ap := a.Permute(perm)
		bp := PermuteVec(perm, b)
		solved, err := SolveCG(ap, bp, CGOptions{Tol: 1e-12})
		if err != nil {
			return false
		}
		back := PermuteVec(InvertPerm(perm), solved.X)
		for i := range back {
			d := back[i] - direct.X[i]
			if d > 1e-6 || d < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
