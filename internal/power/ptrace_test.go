package power

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tecopt/internal/floorplan"
	"tecopt/internal/num"
)

func TestPtraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Units: []string{"core", "l2"},
		Samples: [][]float64{
			{1.5, 0.25},
			{2.0, 0.5},
		},
	}
	var buf bytes.Buffer
	if err := WritePtrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePtrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Units) != 2 || back.Units[0] != "core" {
		t.Fatalf("units = %v", back.Units)
	}
	if len(back.Samples) != 2 || !num.ExactEqual(back.Samples[1][1], 0.5) {
		t.Fatalf("samples = %v", back.Samples)
	}
}

func TestParsePtraceErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"header only":    "core l2\n",
		"ragged row":     "core l2\n1.0\n",
		"bad number":     "core l2\n1.0 x\n",
		"negative power": "core l2\n1.0 -2\n",
	}
	for name, src := range cases {
		if _, err := ParsePtrace(strings.NewReader(src)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestParsePtraceSkipsComments(t *testing.T) {
	src := "# comment\n\ncore l2\n# another\n1 2\n"
	tr, err := ParsePtrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 1 {
		t.Fatalf("samples = %d", len(tr.Samples))
	}
}

func TestWorstCaseAndMean(t *testing.T) {
	tr := &Trace{
		Units: []string{"a", "b"},
		Samples: [][]float64{
			{1, 4},
			{3, 2},
		},
	}
	worst := tr.WorstCase(1.2)
	if math.Abs(worst["a"]-3.6) > 1e-12 || math.Abs(worst["b"]-4.8) > 1e-12 {
		t.Fatalf("worst = %v", worst)
	}
	mean := tr.MeanPower()
	if !num.ExactEqual(mean["a"], 2) || !num.ExactEqual(mean["b"], 3) {
		t.Fatalf("mean = %v", mean)
	}
}

func TestSynthesizeTraceMatchesEnvelopePath(t *testing.T) {
	// The trace-driven path must reproduce the direct worst-case path:
	// synthesizing one sample per workload, the per-unit envelope with
	// the 20% margin must equal AlphaWorstCaseDensities * area.
	f, g := floorplan.Alpha21364Grid()
	m := NewAlphaModel()
	ws := SyntheticSPECWorkloads()
	tr := SynthesizeTrace(m, f, ws)
	if len(tr.Samples) != len(ws) {
		t.Fatalf("samples = %d, want %d", len(tr.Samples), len(ws))
	}
	viaTrace, err := TilePowersFromTrace(tr, f, g, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	direct := AlphaTilePowers(f, g)
	for i := range direct {
		if math.Abs(viaTrace[i]-direct[i]) > 1e-9*(1+direct[i]) {
			t.Fatalf("tile %d: trace %v vs direct %v", i, viaTrace[i], direct[i])
		}
	}
}

func TestTilePowersFromTraceUnknownUnit(t *testing.T) {
	f, g := floorplan.Alpha21364Grid()
	tr := &Trace{Units: []string{"nosuch"}, Samples: [][]float64{{1}}}
	if _, err := TilePowersFromTrace(tr, f, g, 1.2); err == nil {
		t.Fatal("unknown unit accepted")
	}
}

func TestWritePtraceRaggedSample(t *testing.T) {
	tr := &Trace{Units: []string{"a", "b"}, Samples: [][]float64{{1}}}
	var buf bytes.Buffer
	if err := WritePtrace(&buf, tr); err == nil {
		t.Fatal("ragged sample accepted")
	}
}
