package power

import (
	"fmt"
	"math/rand"

	"tecopt/internal/tecerr"

	"tecopt/internal/floorplan"
	"tecopt/internal/num"
)

// Hypothetical-chip generator (paper Section VI.B).
//
// Each benchmark chip HC01..HC10 is a 12x12 array of tiles on a
// 6 mm x 6 mm floorplan, randomly divided into functional units of 5 to
// 15 tiles. Two randomly selected units are "hot": together they consume
// ~30% of the chip power while occupying ~10% of the area. Total chip
// power is drawn from [15, 25] W.

// HCSpec parameterizes the generator; DefaultHCSpec matches the paper.
type HCSpec struct {
	Cols, Rows   int     // tile grid (12x12)
	TileSize     float64 // tile pitch in meters (0.5 mm)
	MinUnitTiles int     // 5
	MaxUnitTiles int     // 15
	HotAreaFrac  float64 // ~0.10 of the chip area
	HotPowerFrac float64 // 0.30 of the chip power
	MinPower     float64 // 15 W
	MaxPower     float64 // 25 W
}

// DefaultHCSpec returns the hypothetical-chip parameters. The unit sizes
// and the 30%-power hot pair follow the paper directly; the total-power
// range and hot-area fraction are tightened relative to the paper's
// quoted "typical" values (15-25 W, ~10% area) so that the generated
// chips reproduce the paper's *observed* no-TEC peak temperatures of
// 89.4-95.3 C in our independently calibrated package model — see
// EXPERIMENTS.md for the calibration notes.
func DefaultHCSpec() HCSpec {
	return HCSpec{
		Cols: 12, Rows: 12,
		TileSize:     0.5e-3,
		MinUnitTiles: 5, MaxUnitTiles: 15,
		HotAreaFrac:  0.075,
		HotPowerFrac: 0.30,
		MinPower:     21,
		MaxPower:     25.5,
	}
}

// HCChip is one generated benchmark chip.
type HCChip struct {
	Name       string
	Floorplan  *floorplan.Floorplan
	Grid       *floorplan.Grid
	TilePower  []float64 // worst-case per-tile power (W)
	TotalPower float64
	HotUnits   []string
	UnitPower  map[string]float64 // per-unit totals (W)
}

// GenerateHC builds one hypothetical chip from the given seed; equal
// seeds produce identical chips, so HC01..HC10 are reproducible.
func GenerateHC(name string, seed int64, spec HCSpec) (*HCChip, error) {
	if spec.Cols <= 0 || spec.Rows <= 0 || spec.TileSize <= 0 {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "power.hc", "power: invalid HC spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(seed))
	f := floorplan.New(name, float64(spec.Cols)*spec.TileSize, float64(spec.Rows)*spec.TileSize)

	// Recursive guillotine partition of the tile grid into units of
	// MinUnitTiles..MaxUnitTiles tiles, all cuts on tile boundaries.
	type cell struct{ c, r, w, h int }
	var rects []cell
	var split func(cl cell)
	split = func(cl cell) {
		area := cl.w * cl.h
		if area <= spec.MaxUnitTiles {
			rects = append(rects, cl)
			return
		}
		// Choose a cut that leaves both halves >= MinUnitTiles.
		// Prefer cutting the longer side at a random position.
		tryVertical := cl.w >= cl.h
		if rng.Intn(4) == 0 { // occasional random orientation for variety
			tryVertical = !tryVertical
		}
		cut := func(vertical bool) bool {
			if vertical {
				lo := (spec.MinUnitTiles + cl.h - 1) / cl.h // ceil
				hi := cl.w - lo
				if hi < lo {
					return false
				}
				at := lo + rng.Intn(hi-lo+1)
				split(cell{cl.c, cl.r, at, cl.h})
				split(cell{cl.c + at, cl.r, cl.w - at, cl.h})
				return true
			}
			lo := (spec.MinUnitTiles + cl.w - 1) / cl.w
			hi := cl.h - lo
			if hi < lo {
				return false
			}
			at := lo + rng.Intn(hi-lo+1)
			split(cell{cl.c, cl.r, cl.w, at})
			split(cell{cl.c, cl.r + at, cl.w, cl.h - at})
			return true
		}
		if !cut(tryVertical) && !cut(!tryVertical) {
			rects = append(rects, cl) // cannot split further legally
		}
	}
	split(cell{0, 0, spec.Cols, spec.Rows})

	for i, cl := range rects {
		u := floorplan.Unit{
			Name: fmt.Sprintf("U%02d", i),
			Rect: floorplan.Rect{
				X: float64(cl.c) * spec.TileSize,
				Y: float64(cl.r) * spec.TileSize,
				W: float64(cl.w) * spec.TileSize,
				H: float64(cl.h) * spec.TileSize,
			},
		}
		if err := f.AddUnit(u); err != nil {
			return nil, err
		}
	}
	if err := f.Validate(1e-9); err != nil {
		return nil, err
	}
	g, err := f.Tile(spec.Cols, spec.Rows)
	if err != nil {
		return nil, err
	}

	// Pick the hot unit pair whose combined area is closest to
	// HotAreaFrac of the chip.
	targetTiles := spec.HotAreaFrac * float64(spec.Cols*spec.Rows)
	tileCount := func(ui int) int { return len(g.TilesOfUnit(f, f.Units[ui].Name)) }
	bestI, bestJ, bestDiff := -1, -1, float64(spec.Cols*spec.Rows)
	for i := range f.Units {
		for j := i + 1; j < len(f.Units); j++ {
			d := float64(tileCount(i)+tileCount(j)) - targetTiles
			if d < 0 {
				d = -d
			}
			// Random tie-breaking keeps hot-spot locations varied.
			if d < bestDiff || (num.ExactEqual(d, bestDiff) && rng.Intn(2) == 0) {
				bestI, bestJ, bestDiff = i, j, d
			}
		}
	}

	total := spec.MinPower + rng.Float64()*(spec.MaxPower-spec.MinPower)
	hotPower := spec.HotPowerFrac * total
	coldPower := total - hotPower

	unitPower := make(map[string]float64, len(f.Units))
	hotTiles := tileCount(bestI) + tileCount(bestJ)
	unitPower[f.Units[bestI].Name] = hotPower * float64(tileCount(bestI)) / float64(hotTiles)
	unitPower[f.Units[bestJ].Name] = hotPower * float64(tileCount(bestJ)) / float64(hotTiles)

	// Distribute the remaining power over cold units: proportional to
	// area with a random +/-50% modulation, then normalized.
	weights := make([]float64, len(f.Units))
	var wSum float64
	for i := range f.Units {
		if i == bestI || i == bestJ {
			continue
		}
		w := float64(tileCount(i)) * (0.5 + rng.Float64())
		weights[i] = w
		wSum += w
	}
	for i := range f.Units {
		if i == bestI || i == bestJ {
			continue
		}
		unitPower[f.Units[i].Name] = coldPower * weights[i] / wSum
	}

	return &HCChip{
		Name:       name,
		Floorplan:  f,
		Grid:       g,
		TilePower:  g.PowerPerTile(f, unitPower),
		TotalPower: total,
		HotUnits:   []string{f.Units[bestI].Name, f.Units[bestJ].Name},
		UnitPower:  unitPower,
	}, nil
}

// GenerateHCSuite builds the ten benchmark chips HC01..HC10 with the
// canonical seeds 1..10.
func GenerateHCSuite(spec HCSpec) ([]*HCChip, error) {
	chips := make([]*HCChip, 0, 10)
	for i := 1; i <= 10; i++ {
		chip, err := GenerateHC(fmt.Sprintf("HC%02d", i), int64(i), spec)
		if err != nil {
			return nil, err
		}
		chips = append(chips, chip)
	}
	return chips, nil
}
