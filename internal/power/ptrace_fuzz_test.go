package power

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParsePtrace hardens the trace parser against malformed input: it
// must either return an error or a structurally consistent trace, and a
// successfully parsed trace must round-trip through WritePtrace.
func FuzzParsePtrace(f *testing.F) {
	f.Add("core l2\n1.0 2.0\n")
	f.Add("# comment\nu\n0\n")
	f.Add("a b c\n1 2 3\n4 5 6\n")
	f.Add("")
	f.Add("x\n-1\n")
	f.Add("x y\n1\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := ParsePtrace(strings.NewReader(src))
		if err != nil {
			return
		}
		if len(tr.Units) == 0 || len(tr.Samples) == 0 {
			t.Fatalf("accepted trace with no units/samples: %+v", tr)
		}
		for s, row := range tr.Samples {
			if len(row) != len(tr.Units) {
				t.Fatalf("sample %d width %d != %d units", s, len(row), len(tr.Units))
			}
			for _, v := range row {
				if v < 0 {
					t.Fatalf("negative power survived parsing: %v", v)
				}
			}
		}
		// Round trip.
		var buf bytes.Buffer
		if err := WritePtrace(&buf, tr); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ParsePtrace(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(back.Units) != len(tr.Units) || len(back.Samples) != len(tr.Samples) {
			t.Fatal("round trip changed shape")
		}
	})
}
