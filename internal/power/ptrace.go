package power

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tecopt/internal/floorplan"
	"tecopt/internal/tecerr"
)

// HotSpot-style .ptrace serialization.
//
// The paper's flow collects per-unit power traces from M5+Wattch runs
// and derives the worst-case per-unit power with a 20% margin. This file
// provides the trace side of that flow: the HotSpot .ptrace text format
// (a header line of unit names followed by whitespace-separated sample
// rows, watts per unit), the worst-case envelope over samples, and the
// bridge onto per-tile power vectors.

// Trace is a per-unit power trace: Samples[s][u] is the power (W) of
// unit Units[u] at sample s.
type Trace struct {
	Units   []string
	Samples [][]float64
}

// ParsePtrace reads a .ptrace stream. Lines starting with '#' and blank
// lines are ignored; every sample row must have one value per unit.
func ParsePtrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	tr := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if tr.Units == nil {
			tr.Units = fields
			continue
		}
		if len(fields) != len(tr.Units) {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "power.ptrace",
				"power: ptrace line %d: %d values, want %d", lineNo, len(fields), len(tr.Units))
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, tecerr.Newf(tecerr.CodeInvalidInput, "power.ptrace",
					"power: ptrace line %d: bad value %q: %v", lineNo, f, err)
			}
			if v < 0 {
				return nil, tecerr.Newf(tecerr.CodeInvalidInput, "power.ptrace",
					"power: ptrace line %d: negative power %g", lineNo, v)
			}
			row[i] = v
		}
		tr.Samples = append(tr.Samples, row)
	}
	if err := sc.Err(); err != nil {
		return nil, tecerr.Wrap(tecerr.CodeInvalidInput, "power.ptrace", "power: reading ptrace", err)
	}
	if tr.Units == nil {
		return nil, tecerr.New(tecerr.CodeInvalidInput, "power.ptrace", "power: ptrace has no header")
	}
	if len(tr.Samples) == 0 {
		return nil, tecerr.New(tecerr.CodeInvalidInput, "power.ptrace", "power: ptrace has no samples")
	}
	return tr, nil
}

// WritePtrace writes the trace in .ptrace format.
func WritePtrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ptrace: %d units, %d samples\n", len(tr.Units), len(tr.Samples))
	fmt.Fprintln(bw, strings.Join(tr.Units, "\t"))
	for _, row := range tr.Samples {
		if len(row) != len(tr.Units) {
			return tecerr.Newf(tecerr.CodeInvalidInput, "power.ptrace",
				"power: sample width %d, want %d", len(row), len(tr.Units))
		}
		for i, v := range row {
			if i > 0 {
				bw.WriteByte('\t')
			}
			fmt.Fprintf(bw, "%.6g", v)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WorstCase returns the per-unit maximum over samples times margin — the
// paper's worst-case construction (margin 1.2 for the +20% guard band).
func (tr *Trace) WorstCase(margin float64) map[string]float64 {
	out := make(map[string]float64, len(tr.Units))
	for s := range tr.Samples {
		for u, v := range tr.Samples[s] {
			if w := v * margin; w > out[tr.Units[u]] {
				out[tr.Units[u]] = w
			}
		}
	}
	return out
}

// MeanPower returns the per-unit mean power over samples.
func (tr *Trace) MeanPower() map[string]float64 {
	out := make(map[string]float64, len(tr.Units))
	for s := range tr.Samples {
		for u, v := range tr.Samples[s] {
			out[tr.Units[u]] += v
		}
	}
	for u := range out {
		out[u] /= float64(len(tr.Samples))
	}
	return out
}

// SynthesizeTrace evaluates the activity model over the workloads and
// emits one .ptrace sample per workload for the floorplan's units —
// exactly the data the paper's M5+Wattch stage produces. Unit powers are
// densities times unit areas.
func SynthesizeTrace(m *Model, f *floorplan.Floorplan, workloads []Workload) *Trace {
	tr := &Trace{Units: f.UnitNames()}
	for _, w := range workloads {
		d := m.Densities(w)
		row := make([]float64, len(f.Units))
		for i, u := range f.Units {
			row[i] = d[u.Name] * u.Area()
		}
		tr.Samples = append(tr.Samples, row)
	}
	return tr
}

// TilePowersFromTrace derives the worst-case per-tile power vector from
// a trace: per-unit envelope with margin, spread uniformly over each
// unit's tiles.
func TilePowersFromTrace(tr *Trace, f *floorplan.Floorplan, g *floorplan.Grid, margin float64) ([]float64, error) {
	worst := tr.WorstCase(margin)
	for _, u := range tr.Units {
		if _, ok := f.Unit(u); !ok {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "power.ptrace",
				"power: trace unit %q not in floorplan %s", u, f.Name)
		}
	}
	return g.PowerPerTile(f, worst), nil
}
