package power

import (
	"math"
	"testing"
	"testing/quick"

	"tecopt/internal/num"
)

func TestGenerateHCDeterministic(t *testing.T) {
	a, err := GenerateHC("HC01", 1, DefaultHCSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateHC("HC01", 1, DefaultHCSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !num.ExactEqual(a.TotalPower, b.TotalPower) || len(a.Floorplan.Units) != len(b.Floorplan.Units) {
		t.Fatal("GenerateHC not deterministic")
	}
	for i := range a.TilePower {
		if !num.ExactEqual(a.TilePower[i], b.TilePower[i]) {
			t.Fatal("tile powers differ between runs")
		}
	}
}

func TestGenerateHCSuite(t *testing.T) {
	chips, err := GenerateHCSuite(DefaultHCSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(chips) != 10 {
		t.Fatalf("suite size = %d, want 10", len(chips))
	}
	names := map[string]bool{}
	for _, c := range chips {
		if names[c.Name] {
			t.Errorf("duplicate chip name %s", c.Name)
		}
		names[c.Name] = true
	}
	if !names["HC01"] || !names["HC10"] {
		t.Error("expected names HC01..HC10")
	}
}

func TestHCSpecInvariants(t *testing.T) {
	spec := DefaultHCSpec()
	chips, err := GenerateHCSuite(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chips {
		t.Run(c.Name, func(t *testing.T) {
			// Floorplan tiles the die exactly.
			if err := c.Floorplan.Validate(1e-9); err != nil {
				t.Fatalf("floorplan invalid: %v", err)
			}
			// Unit sizes between 5 and 15 tiles (paper Section VI.B).
			for _, u := range c.Floorplan.Units {
				tiles := len(c.Grid.TilesOfUnit(c.Floorplan, u.Name))
				if tiles < spec.MinUnitTiles || tiles > spec.MaxUnitTiles {
					t.Errorf("unit %s has %d tiles, want %d..%d", u.Name, tiles, spec.MinUnitTiles, spec.MaxUnitTiles)
				}
			}
			// Total power in [15, 25] W and conserved on tiles.
			if c.TotalPower < spec.MinPower || c.TotalPower > spec.MaxPower {
				t.Errorf("total power %.2f outside [%g, %g]", c.TotalPower, spec.MinPower, spec.MaxPower)
			}
			var sum float64
			for _, p := range c.TilePower {
				if p < 0 {
					t.Error("negative tile power")
				}
				sum += p
			}
			if math.Abs(sum-c.TotalPower) > 1e-9*c.TotalPower {
				t.Errorf("tile powers sum %.6f != total %.6f", sum, c.TotalPower)
			}
			// Two hot units with ~30% power in ~10% area.
			if len(c.HotUnits) != 2 {
				t.Fatalf("hot units = %v", c.HotUnits)
			}
			hotPower := c.UnitPower[c.HotUnits[0]] + c.UnitPower[c.HotUnits[1]]
			if math.Abs(hotPower/c.TotalPower-spec.HotPowerFrac) > 1e-9 {
				t.Errorf("hot power fraction = %.3f, want %.2f", hotPower/c.TotalPower, spec.HotPowerFrac)
			}
			hotTiles := len(c.Grid.TilesOfUnit(c.Floorplan, c.HotUnits[0])) +
				len(c.Grid.TilesOfUnit(c.Floorplan, c.HotUnits[1]))
			frac := float64(hotTiles) / float64(c.Grid.NumTiles())
			if frac < 0.06 || frac > 0.16 {
				t.Errorf("hot area fraction = %.3f, want ~0.10", frac)
			}
		})
	}
}

func TestGenerateHCBadSpec(t *testing.T) {
	spec := DefaultHCSpec()
	spec.Cols = 0
	if _, err := GenerateHC("x", 1, spec); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// Property: generation succeeds and preserves its invariants for
// arbitrary seeds, not only the canonical 1..10.
func TestGenerateHCArbitrarySeedsProperty(t *testing.T) {
	spec := DefaultHCSpec()
	f := func(seed int64) bool {
		c, err := GenerateHC("hc", seed, spec)
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range c.TilePower {
			if p < 0 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-c.TotalPower) < 1e-6 && c.Floorplan.Validate(1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
