package power

import (
	"math"
	"testing"

	"tecopt/internal/floorplan"
	"tecopt/internal/num"
)

func TestUnitParamsDensityClamps(t *testing.T) {
	u := UnitParams{IdleDensity: 10, DynamicDensity: 90}
	if got := u.Density(0); !num.ExactEqual(got, 10) {
		t.Errorf("Density(0) = %v", got)
	}
	if got := u.Density(1); !num.ExactEqual(got, 100) {
		t.Errorf("Density(1) = %v", got)
	}
	if got := u.Density(-1); !num.ExactEqual(got, 10) {
		t.Errorf("Density(-1) = %v, want clamp to idle", got)
	}
	if got := u.Density(2); !num.ExactEqual(got, 100) {
		t.Errorf("Density(2) = %v, want clamp to max", got)
	}
	if got := u.Density(0.5); !num.ExactEqual(got, 55) {
		t.Errorf("Density(0.5) = %v", got)
	}
}

func TestEnvelope(t *testing.T) {
	ws := []Workload{
		{Name: "a", Activity: map[string]float64{"x": 0.3, "y": 0.9}},
		{Name: "b", Activity: map[string]float64{"x": 0.7, "z": 0.2}},
	}
	env := Envelope(ws)
	if !num.ExactEqual(env["x"], 0.7) || !num.ExactEqual(env["y"], 0.9) || !num.ExactEqual(env["z"], 0.2) {
		t.Fatalf("Envelope = %v", env)
	}
}

func TestSyntheticWorkloadsEnvelopeIsOne(t *testing.T) {
	ws := SyntheticSPECWorkloads()
	if len(ws) != 10 {
		t.Fatalf("workload count = %d, want 10", len(ws))
	}
	env := Envelope(ws)
	for unit, v := range env {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("envelope[%s] = %v, want 1.0", unit, v)
		}
	}
	// All Alpha units must be exercised.
	for unit := range alphaWorstDensity {
		if _, ok := env[unit]; !ok {
			t.Errorf("unit %s never active in any workload", unit)
		}
	}
}

func TestAlphaModelReproducesWorstCase(t *testing.T) {
	m := NewAlphaModel()
	ws := SyntheticSPECWorkloads()
	got := m.WorstCaseDensities(ws, 1.2)
	want := AlphaWorstCaseDensities()
	for unit, w := range want {
		if g, ok := got[unit]; !ok || math.Abs(g-w) > 1e-6*w {
			t.Errorf("worst case %s = %v, want %v", unit, got[unit], w)
		}
	}
}

func TestAlphaTotalPowerMatchesPaper(t *testing.T) {
	f, g := floorplan.Alpha21364Grid()
	p := AlphaTilePowers(f, g)
	if len(p) != 144 {
		t.Fatalf("tile power length = %d", len(p))
	}
	var total float64
	for _, v := range p {
		total += v
	}
	// Paper: total worst-case chip power is 20.6 W.
	if math.Abs(total-20.6) > 0.2 {
		t.Fatalf("total power = %.3f W, want ~20.6 W", total)
	}
	if err := CheckBudget(p, 20.6, 0.01); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaHotUnitShare(t *testing.T) {
	f, g := floorplan.Alpha21364Grid()
	p := AlphaTilePowers(f, g)
	var total, hot float64
	hotSet := make(map[int]bool)
	for _, name := range floorplan.AlphaHotUnits {
		for _, tile := range g.TilesOfUnit(f, name) {
			hotSet[tile] = true
		}
	}
	for i, v := range p {
		total += v
		if hotSet[i] {
			hot += v
		}
	}
	frac := hot / total
	// Paper: 28.1% of power in the hot units. Our grid-exact layout puts
	// the hot cluster at ~33% (the densities are calibrated so the
	// greedy deployment reproduces Table I's shape; see EXPERIMENTS.md).
	if frac < 0.26 || frac > 0.36 {
		t.Fatalf("hot power fraction = %.3f, want ~0.28-0.33", frac)
	}
	// And the hottest single tile must be an IntReg tile at 282.4 W/cm^2.
	maxP, maxIdx := 0.0, -1
	for i, v := range p {
		if v > maxP {
			maxP, maxIdx = v, i
		}
	}
	if !hotSet[maxIdx] {
		t.Error("hottest tile is not in a hot unit")
	}
	wantTile := 282.4 * WattsPerCm2 * g.TileArea()
	if math.Abs(maxP-wantTile) > 1e-6 {
		t.Fatalf("hottest tile power = %v, want %v (282.4 W/cm^2)", maxP, wantTile)
	}
}

func TestDensitiesSingleWorkload(t *testing.T) {
	m := NewAlphaModel()
	idle := m.Densities(Workload{Name: "idle", Activity: nil})
	for unit, d := range idle {
		if d <= 0 {
			t.Errorf("idle density %s = %v, want > 0", unit, d)
		}
		worst := alphaWorstDensity[unit] * WattsPerCm2
		if d >= worst {
			t.Errorf("idle density %s = %v >= worst %v", unit, d, worst)
		}
	}
}

func TestTotalPower(t *testing.T) {
	f := floorplan.New("t", 1e-2, 1e-2) // 1 cm^2
	_ = f.AddUnit(floorplan.Unit{Name: "u", Rect: floorplan.Rect{X: 0, Y: 0, W: 1e-2, H: 1e-2}})
	got := TotalPower(f, map[string]float64{"u": 50 * WattsPerCm2})
	if math.Abs(got-50) > 1e-9 {
		t.Fatalf("TotalPower = %v, want 50", got)
	}
}

func TestCheckBudget(t *testing.T) {
	if err := CheckBudget([]float64{1, 2, 3}, 6, 0.01); err != nil {
		t.Errorf("exact budget rejected: %v", err)
	}
	if err := CheckBudget([]float64{1, 2, 3}, 10, 0.01); err == nil {
		t.Error("wrong budget accepted")
	}
}

func TestTopTiles(t *testing.T) {
	p := []float64{0.1, 0.9, 0.5, 0.7}
	top := TopTiles(p, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Fatalf("TopTiles = %v, want [1 3]", top)
	}
	if got := TopTiles(p, 99); len(got) != 4 {
		t.Fatalf("TopTiles clamped length = %d", len(got))
	}
}
