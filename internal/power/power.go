// Package power models worst-case chip power profiles.
//
// The paper obtains per-unit worst-case powers by simulating SPEC2000 on
// the M5 microarchitectural simulator with the Wattch power model and
// adding a 20% margin. Neither tool (nor the traces) is available here,
// so this package substitutes an analytic activity-based power model — a
// per-unit idle power plus an activity-scaled dynamic power, the same
// abstraction Wattch implements — driven by a set of synthetic
// SPEC2000-like workloads. The model is calibrated so the resulting
// worst-case envelope reproduces the statistics the paper publishes for
// the Alpha-21364-like chip: IntReg at 282.4 W/cm^2, L2 at 25.0 W/cm^2,
// 20.6 W total, and the six hot units consuming ~28% of the power in
// ~10-12% of the area.
package power

import (
	"math"
	"sort"

	"tecopt/internal/floorplan"
	"tecopt/internal/num"
	"tecopt/internal/tecerr"
)

// UnitParams describes one functional unit's power behaviour.
// Densities are in W/m^2.
type UnitParams struct {
	// IdleDensity is the leakage/clock power density at zero activity.
	IdleDensity float64
	// DynamicDensity is the additional density at activity 1.0.
	DynamicDensity float64
}

// Density returns the power density at the given activity in [0, 1].
func (u UnitParams) Density(activity float64) float64 {
	if activity < 0 {
		activity = 0
	}
	if activity > 1 {
		activity = 1
	}
	return u.IdleDensity + activity*u.DynamicDensity
}

// Model is an activity-based per-unit power model (the Wattch substitute).
type Model struct {
	Units map[string]UnitParams
}

// Workload gives per-unit activity factors in [0, 1]; absent units run at
// zero activity.
type Workload struct {
	Name     string
	Activity map[string]float64
}

// Envelope returns, per unit, the maximum activity over the workloads —
// the worst case the cooling system must be designed for.
func Envelope(workloads []Workload) map[string]float64 {
	env := make(map[string]float64)
	for _, w := range workloads {
		for u, a := range w.Activity {
			if a > env[u] {
				env[u] = a
			}
		}
	}
	return env
}

// WorstCaseDensities evaluates the model at the workload envelope and
// applies the multiplicative margin (the paper uses 1.2).
func (m *Model) WorstCaseDensities(workloads []Workload, margin float64) map[string]float64 {
	env := Envelope(workloads)
	out := make(map[string]float64, len(m.Units))
	for name, up := range m.Units {
		out[name] = up.Density(env[name]) * margin
	}
	return out
}

// Densities evaluates the model for a single workload without margin.
func (m *Model) Densities(w Workload) map[string]float64 {
	out := make(map[string]float64, len(m.Units))
	for name, up := range m.Units {
		out[name] = up.Density(w.Activity[name])
	}
	return out
}

// TotalPower integrates a density map over the floorplan's units.
func TotalPower(f *floorplan.Floorplan, density map[string]float64) float64 {
	var p float64
	for _, u := range f.Units {
		p += density[u.Name] * u.Area()
	}
	return p
}

// alphaWorstDensity is the calibrated worst-case power density table for
// the Alpha-21364-like floorplan, in W/cm^2, including the 20% margin.
// IntReg and L2 match the values quoted in Section VI.A; the remaining
// units are set so the totals reproduce the paper's statistics (20.6 W
// total; IntReg, IntExec, IQ, LSQ, FPMul, FPAdd ~28-29% of power).
var alphaWorstDensity = map[string]float64{
	"IntReg":   282.4,
	"IntExec":  150.0,
	"IntQ":     105.0,
	"LdStQ":    90.0,
	"FPMul":    120.0,
	"FPAdd":    80.0,
	"FPReg":    70.0,
	"FPMap":    40.0,
	"IntMap":   55.0,
	"FPQ":      40.0,
	"ITB":      60.0,
	"Icache":   69.0,
	"Dcache":   75.0,
	"Bpred":    50.0,
	"DTB":      50.0,
	"L2":       25.0,
	"L2_left":  25.0,
	"L2_right": 25.0,
	"Router":   80.0,
	"MemCtrl":  80.0,
}

// WattsPerCm2 converts W/cm^2 to W/m^2.
const WattsPerCm2 = 1e4

// AlphaWorstCaseDensities returns the calibrated worst-case densities for
// the Alpha chip in W/m^2 (margin included).
func AlphaWorstCaseDensities() map[string]float64 {
	out := make(map[string]float64, len(alphaWorstDensity))
	for k, v := range alphaWorstDensity {
		out[k] = v * WattsPerCm2
	}
	return out
}

// NewAlphaModel builds the activity model whose workload envelope, with
// the paper's 20% margin, reproduces AlphaWorstCaseDensities exactly:
// idle is 25% of the pre-margin worst case and the dynamic range covers
// the rest at activity 1.
func NewAlphaModel() *Model {
	const margin = 1.2
	units := make(map[string]UnitParams, len(alphaWorstDensity))
	for name, worst := range alphaWorstDensity {
		preMargin := worst * WattsPerCm2 / margin
		idle := 0.25 * preMargin
		units[name] = UnitParams{IdleDensity: idle, DynamicDensity: preMargin - idle}
	}
	return &Model{Units: units}
}

// SyntheticSPECWorkloads returns ten synthetic workloads patterned after
// SPEC CPU2000 behaviour classes (integer-heavy, FP-heavy, memory-bound,
// branchy, balanced). Activities are normalized so every unit reaches
// activity 1.0 in at least one workload; the envelope therefore evaluates
// the model at its full dynamic range, matching the worst-case
// construction of Section VI.A.
func SyntheticSPECWorkloads() []Workload {
	raw := []Workload{
		{Name: "gzip-like", Activity: map[string]float64{
			"IntReg": 1.0, "IntExec": 1.0, "IntQ": 1.0, "LdStQ": 0.8, "Icache": 0.7,
			"Dcache": 0.9, "Bpred": 0.8, "DTB": 0.8, "ITB": 0.6, "IntMap": 1.0,
			"L2": 0.4, "L2_left": 0.4, "L2_right": 0.4, "MemCtrl": 0.5, "Router": 0.2,
			"FPAdd": 0.05, "FPMul": 0.05, "FPReg": 0.05, "FPMap": 0.05, "FPQ": 0.05,
		}},
		{Name: "gcc-like", Activity: map[string]float64{
			"IntReg": 0.9, "IntExec": 0.85, "IntQ": 0.9, "LdStQ": 1.0, "Icache": 1.0,
			"Dcache": 0.8, "Bpred": 1.0, "DTB": 0.9, "ITB": 1.0, "IntMap": 0.9,
			"L2": 0.7, "L2_left": 0.7, "L2_right": 0.7, "MemCtrl": 0.6, "Router": 0.3,
			"FPAdd": 0.05, "FPMul": 0.05, "FPReg": 0.05, "FPMap": 0.05, "FPQ": 0.05,
		}},
		{Name: "mcf-like", Activity: map[string]float64{
			"IntReg": 0.5, "IntExec": 0.4, "IntQ": 0.5, "LdStQ": 0.9, "Icache": 0.3,
			"Dcache": 1.0, "Bpred": 0.4, "DTB": 1.0, "ITB": 0.3, "IntMap": 0.4,
			"L2": 1.0, "L2_left": 1.0, "L2_right": 1.0, "MemCtrl": 1.0, "Router": 0.7,
			"FPAdd": 0.02, "FPMul": 0.02, "FPReg": 0.02, "FPMap": 0.02, "FPQ": 0.02,
		}},
		{Name: "crafty-like", Activity: map[string]float64{
			"IntReg": 0.95, "IntExec": 0.9, "IntQ": 0.85, "LdStQ": 0.7, "Icache": 0.8,
			"Dcache": 0.7, "Bpred": 0.9, "DTB": 0.7, "ITB": 0.7, "IntMap": 0.8,
			"L2": 0.5, "L2_left": 0.5, "L2_right": 0.5, "MemCtrl": 0.4, "Router": 0.2,
			"FPAdd": 0.05, "FPMul": 0.05, "FPReg": 0.05, "FPMap": 0.05, "FPQ": 0.05,
		}},
		{Name: "art-like", Activity: map[string]float64{
			"IntReg": 0.4, "IntExec": 0.35, "IntQ": 0.4, "LdStQ": 0.8, "Icache": 0.3,
			"Dcache": 0.9, "Bpred": 0.3, "DTB": 0.8, "ITB": 0.3, "IntMap": 0.4,
			"L2": 0.9, "L2_left": 0.9, "L2_right": 0.9, "MemCtrl": 0.9, "Router": 0.5,
			"FPAdd": 1.0, "FPMul": 0.9, "FPReg": 1.0, "FPMap": 1.0, "FPQ": 1.0,
		}},
		{Name: "equake-like", Activity: map[string]float64{
			"IntReg": 0.45, "IntExec": 0.4, "IntQ": 0.45, "LdStQ": 0.85, "Icache": 0.35,
			"Dcache": 0.85, "Bpred": 0.35, "DTB": 0.75, "ITB": 0.3, "IntMap": 0.45,
			"L2": 0.85, "L2_left": 0.85, "L2_right": 0.85, "MemCtrl": 0.8, "Router": 0.4,
			"FPAdd": 0.9, "FPMul": 1.0, "FPReg": 0.9, "FPMap": 0.9, "FPQ": 0.9,
		}},
		{Name: "swim-like", Activity: map[string]float64{
			"IntReg": 0.35, "IntExec": 0.3, "IntQ": 0.35, "LdStQ": 0.9, "Icache": 0.25,
			"Dcache": 0.8, "Bpred": 0.25, "DTB": 0.7, "ITB": 0.25, "IntMap": 0.35,
			"L2": 0.95, "L2_left": 0.95, "L2_right": 0.95, "MemCtrl": 0.95, "Router": 1.0,
			"FPAdd": 0.85, "FPMul": 0.85, "FPReg": 0.8, "FPMap": 0.8, "FPQ": 0.85,
		}},
		{Name: "vortex-like", Activity: map[string]float64{
			"IntReg": 0.85, "IntExec": 0.8, "IntQ": 0.8, "LdStQ": 0.95, "Icache": 0.9,
			"Dcache": 0.95, "Bpred": 0.8, "DTB": 0.95, "ITB": 0.9, "IntMap": 0.8,
			"L2": 0.8, "L2_left": 0.8, "L2_right": 0.8, "MemCtrl": 0.7, "Router": 0.4,
			"FPAdd": 0.05, "FPMul": 0.05, "FPReg": 0.05, "FPMap": 0.05, "FPQ": 0.05,
		}},
		{Name: "mesa-like", Activity: map[string]float64{
			"IntReg": 0.7, "IntExec": 0.65, "IntQ": 0.7, "LdStQ": 0.75, "Icache": 0.6,
			"Dcache": 0.75, "Bpred": 0.6, "DTB": 0.7, "ITB": 0.55, "IntMap": 0.65,
			"L2": 0.6, "L2_left": 0.6, "L2_right": 0.6, "MemCtrl": 0.6, "Router": 0.3,
			"FPAdd": 0.7, "FPMul": 0.75, "FPReg": 0.7, "FPMap": 0.7, "FPQ": 0.7,
		}},
		{Name: "perl-like", Activity: map[string]float64{
			"IntReg": 0.9, "IntExec": 0.85, "IntQ": 0.9, "LdStQ": 0.85, "Icache": 0.95,
			"Dcache": 0.85, "Bpred": 0.95, "DTB": 0.85, "ITB": 0.95, "IntMap": 0.85,
			"L2": 0.6, "L2_left": 0.6, "L2_right": 0.6, "MemCtrl": 0.5, "Router": 0.25,
			"FPAdd": 0.1, "FPMul": 0.1, "FPReg": 0.1, "FPMap": 0.1, "FPQ": 0.1,
		}},
	}
	// Normalize so every unit's envelope is exactly 1.0.
	env := Envelope(raw)
	for _, w := range raw {
		for u := range w.Activity {
			if env[u] > 0 {
				w.Activity[u] /= env[u]
			}
		}
	}
	return raw
}

// AlphaTilePowers returns the worst-case per-tile power vector (W) for
// the Alpha floorplan/grid, i.e. the input the optimizer consumes.
func AlphaTilePowers(f *floorplan.Floorplan, g *floorplan.Grid) []float64 {
	return g.DensityPerTile(f, AlphaWorstCaseDensities())
}

// CheckBudget verifies that a per-tile power vector sums to total within
// rel, returning a descriptive error otherwise. Guards against silently
// dropping units when floorplan and power tables drift apart.
func CheckBudget(p []float64, total, rel float64) error {
	var s float64
	for _, v := range p {
		s += v
	}
	if math.Abs(s-total) > rel*total {
		return tecerr.Newf(tecerr.CodeInvalidInput, "power.validate",
			"power: tile powers sum to %.4g W, want %.4g W", s, total)
	}
	return nil
}

// TopTiles returns the indices of the n highest-power tiles, descending.
func TopTiles(p []float64, n int) []int {
	idx := make([]int, len(p))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p[idx[a]] > p[idx[b]] })
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

// ValidateTilePower is the power-map validation entry point: it rejects
// NaN/Inf and negative per-tile powers with a tecerr.CodeInvalidInput
// error naming the offending tile. Every CLI runs its power map through
// this before handing it to a solver — a single NaN tile power would
// otherwise sail through plain sign checks (NaN fails `v < 0` too) and
// surface only as a diverging solve.
func ValidateTilePower(p []float64) error {
	if len(p) == 0 {
		return tecerr.New(tecerr.CodeInvalidInput, "power.validate",
			"power: empty tile power vector")
	}
	for t, v := range p {
		if !num.IsFinite(v) {
			return tecerr.Newf(tecerr.CodeInvalidInput, "power.validate",
				"power: non-finite power %g at tile %d", v, t)
		}
		if v < 0 {
			return tecerr.Newf(tecerr.CodeInvalidInput, "power.validate",
				"power: negative power %g at tile %d", v, t)
		}
	}
	return nil
}
