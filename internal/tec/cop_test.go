package tec

import (
	"math"
	"testing"

	"tecopt/internal/num"
)

func TestZTPlausible(t *testing.T) {
	d := ChowdhuryDevice()
	zt := d.ZT(300)
	// Superlattice thin films: ZT around 0.1-3 depending on geometry
	// lumping; must at least be positive and not absurd.
	if zt <= 0 || zt > 10 {
		t.Fatalf("ZT(300K) = %v implausible", zt)
	}
	// ZT scales linearly with temperature.
	if r := d.ZT(600) / zt; math.Abs(r-2) > 1e-12 {
		t.Fatalf("ZT(600)/ZT(300) = %v, want 2", r)
	}
}

func TestCOPSignsAndZero(t *testing.T) {
	d := ChowdhuryDevice()
	th, tc := 350.0, 345.0
	// Moderate current: pumping heat, positive COP.
	iGood := 0.3 * d.MaxCoolingCurrent(tc)
	if cop := d.COP(iGood, th, tc); cop <= 0 {
		t.Fatalf("COP(%.1fA) = %v, want > 0", iGood, cop)
	}
	// Zero current with dT > 0: q_c < 0 (back conduction), p = 0.
	if cop := d.COP(0, th, tc); !math.IsInf(cop, 1) {
		t.Fatalf("COP(0) = %v, want +Inf convention", cop)
	}
	// At the zero-COP current q_c vanishes.
	iZero := d.ZeroCOPCurrent(th, tc)
	if iZero <= 0 {
		t.Fatalf("ZeroCOPCurrent = %v, want > 0", iZero)
	}
	if qc := d.ColdSideFlux(iZero, th, tc); math.Abs(qc) > 1e-9 {
		t.Fatalf("q_c at zero-COP current = %v, want 0", qc)
	}
	// Beyond it the device heats its own cold side.
	if qc := d.ColdSideFlux(iZero*1.1, th, tc); qc >= 0 {
		t.Fatalf("q_c beyond zero-COP current = %v, want < 0", qc)
	}
}

func TestZeroCOPCurrentNoPositiveRegion(t *testing.T) {
	// Huge dT: conduction dominates at every current, q_c < 0 always.
	d := ChowdhuryDevice()
	if i := d.ZeroCOPCurrent(10000, 300); !num.IsZero(i) {
		t.Fatalf("ZeroCOPCurrent = %v, want 0 for conduction-dominated case", i)
	}
}

func TestMaxCoolingCurrentIsOptimum(t *testing.T) {
	d := ChowdhuryDevice()
	th, tc := 350.0, 340.0
	iq := d.MaxCoolingCurrent(tc)
	qAt := d.ColdSideFlux(iq, th, tc)
	for _, di := range []float64{-1, 1} {
		if q := d.ColdSideFlux(iq+di, th, tc); q > qAt {
			t.Fatalf("q_c(%.2f) = %v exceeds q_c at the textbook optimum %v", iq+di, q, qAt)
		}
	}
}

func TestMaxDeltaT(t *testing.T) {
	d := ChowdhuryDevice()
	tc := 300.0
	dtMax := d.MaxDeltaT(tc)
	if dtMax <= 0 {
		t.Fatalf("MaxDeltaT = %v", dtMax)
	}
	// At dT = dT_max and i = i_q, q_c must be ~0 (definition).
	iq := d.MaxCoolingCurrent(tc)
	qc := d.ColdSideFlux(iq, tc+dtMax, tc)
	if math.Abs(qc) > 1e-9*(1+math.Abs(qc)) {
		t.Fatalf("q_c at (i_q, dT_max) = %v, want 0", qc)
	}
}

func TestArrayCOP(t *testing.T) {
	pn, arr := buildWithSites(t, []int{50, 60})
	theta := make([]float64, pn.Net.NumNodes())
	for i := range theta {
		theta[i] = 350
	}
	theta[arr.Cold[0]] = 345
	theta[arr.Cold[1]] = 346
	i := 0.3 * arr.Params.MaxCoolingCurrent(345)
	cop := arr.ArrayCOP(theta, i)
	if cop <= 0 || math.IsInf(cop, 0) {
		t.Fatalf("ArrayCOP = %v", cop)
	}
	// Zero current: infinite by convention.
	if !math.IsInf(arr.ArrayCOP(theta, 0), 1) {
		t.Fatal("ArrayCOP(0) not +Inf")
	}
}
