// Package tec models super-lattice thin-film thermoelectric cooler (TEC)
// devices and their insertion into the compact thermal network
// (Sections III and IV.B of the paper).
//
// A device is characterized by its Seebeck coefficient alpha (V/K),
// electrical resistance r (ohm), thermal conductance kappa (W/K) and the
// hot/cold contact conductances g_h, g_c (W/K). At supply current i the
// device absorbs q_c = alpha*i*theta_c - r*i^2/2 - kappa*(theta_h -
// theta_c) at the cold side and releases q_h = alpha*i*theta_h + r*i^2/2
// - kappa*(theta_h - theta_c) at the hot side (Eqs. 1-2); its electrical
// input power is p = r*i^2 + alpha*i*(theta_h - theta_c) (Eq. 3).
//
// In the network model of Figure 4 the Peltier terms become current-
// dependent conductors to thermal ground — +alpha*i at the cold node,
// -alpha*i at the hot node — which is exactly the diagonal matrix D of
// Eq. (4-5); the Joule term becomes two r*i^2/2 heat sources.
package tec

import (
	"tecopt/internal/material"
	"tecopt/internal/num"
	"tecopt/internal/tecerr"
	"tecopt/internal/thermal"
)

// DeviceParams describes one thin-film TEC device.
type DeviceParams struct {
	// Seebeck is the device Seebeck coefficient alpha in V/K (a material
	// constant; see footnote 1 of the paper).
	Seebeck float64
	// Resistance is the electrical resistance r in ohm.
	Resistance float64
	// Kappa is the hot-to-cold thermal conductance in W/K.
	Kappa float64
	// ContactCold (g_c) and ContactHot (g_h) are the interface
	// conductances between the device headers and the silicon/spreader
	// sides, in W/K. The paper notes that g_h, lying between the hot
	// side and the ambient, plays a central role in thermal runaway.
	ContactCold, ContactHot float64
}

// Validate reports whether the parameters are physical. Measured device
// parameters arrive noisy and occasionally out of spec, so NaN/Inf are
// rejected explicitly — a NaN slips through every plain `<= 0` sign
// test. Errors carry tecerr.CodeInvalidInput.
func (d DeviceParams) Validate() error {
	switch {
	case !num.IsFinite(d.Seebeck) || !num.IsFinite(d.Resistance) || !num.IsFinite(d.Kappa) ||
		!num.IsFinite(d.ContactCold) || !num.IsFinite(d.ContactHot):
		return tecerr.Newf(tecerr.CodeInvalidInput, "tec.validate",
			"tec: parameters must be finite, have alpha=%g r=%g kappa=%g g_c=%g g_h=%g",
			d.Seebeck, d.Resistance, d.Kappa, d.ContactCold, d.ContactHot)
	case d.Seebeck <= 0:
		return tecerr.Newf(tecerr.CodeInvalidInput, "tec.validate",
			"tec: Seebeck coefficient must be positive, have %g", d.Seebeck)
	case d.Resistance <= 0:
		return tecerr.Newf(tecerr.CodeInvalidInput, "tec.validate",
			"tec: resistance must be positive, have %g", d.Resistance)
	case d.Kappa <= 0:
		return tecerr.Newf(tecerr.CodeInvalidInput, "tec.validate",
			"tec: kappa must be positive, have %g", d.Kappa)
	case d.ContactCold <= 0 || d.ContactHot <= 0:
		return tecerr.Newf(tecerr.CodeInvalidInput, "tec.validate",
			"tec: contact conductances must be positive, have g_c=%g g_h=%g", d.ContactCold, d.ContactHot)
	}
	return nil
}

// ChowdhuryDevice returns parameters for a 0.5 mm x 0.5 mm super-lattice
// thin-film TEC derived from Chowdhury et al. [1]: an 8 um
// Bi2Te3/Sb2Te3 superlattice film (k = 1.2 W/mK) under metal headers,
// with a device Seebeck coefficient of ~300 uV/K, a few-milliohm series
// resistance, and header/interface contact resistivities around
// 1e-6 K*m^2/W. With these values the device operates in the few-amp
// regime (optimal currents around 3-9 A) and delivers on-demand cooling
// swings of several kelvin, matching both Chowdhury's measurements and
// the paper's Table I (I_opt 5.05-10.42 A).
func ChowdhuryDevice() DeviceParams {
	const (
		side      = 0.5e-3 // lateral dimension (m), Section III.A
		filmThick = 8e-6   // superlattice film thickness (m)
		contactR  = 1.3e-6 // contact resistivity (K*m^2/W)
	)
	area := side * side
	return DeviceParams{
		Seebeck:     3.0e-4,
		Resistance:  2.6e-3,
		Kappa:       material.Superlattice.Conductivity * area / filmThick,
		ContactCold: area / contactR,
		ContactHot:  area / contactR,
	}
}

// InputPower returns the electrical power drawn by one device at current
// i with hot/cold side temperatures thetaHot/thetaCold (Eq. 3).
func (d DeviceParams) InputPower(i, thetaHot, thetaCold float64) float64 {
	return d.Resistance*i*i + d.Seebeck*i*(thetaHot-thetaCold)
}

// ColdSideFlux returns q_c per Eq. (1). Positive values mean the device
// is absorbing heat from the cold side (net cooling).
func (d DeviceParams) ColdSideFlux(i, thetaHot, thetaCold float64) float64 {
	return d.Seebeck*i*thetaCold - 0.5*d.Resistance*i*i - d.Kappa*(thetaHot-thetaCold)
}

// HotSideFlux returns q_h per Eq. (2).
func (d DeviceParams) HotSideFlux(i, thetaHot, thetaCold float64) float64 {
	return d.Seebeck*i*thetaHot + 0.5*d.Resistance*i*i - d.Kappa*(thetaHot-thetaCold)
}

// Array is a set of TEC devices attached to a package network. Per the
// paper's single-extra-pin configuration (Section III.B), all devices
// share one supply current and are electrically in series, thermally in
// parallel.
type Array struct {
	Params DeviceParams
	// Tiles lists the covered silicon tiles in ascending order of
	// attachment.
	Tiles []int
	// Cold and Hot are the per-device network node indices, parallel to
	// Tiles.
	Cold, Hot []int
}

// Attach wires one device per tile in sites into the package network.
// The network must have been built with exactly these TEC sites reserved.
func Attach(pn *thermal.PackageNetwork, params DeviceParams, sites []int) (*Array, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	arr := &Array{Params: params}
	for _, t := range sites {
		cold, hot, err := pn.AttachTEC(t, params.ContactCold, params.ContactHot, params.Kappa)
		if err != nil {
			return nil, err
		}
		arr.Tiles = append(arr.Tiles, t)
		arr.Cold = append(arr.Cold, cold)
		arr.Hot = append(arr.Hot, hot)
	}
	return arr, nil
}

// Count returns the number of attached devices.
func (a *Array) Count() int { return len(a.Tiles) }

// DVector builds the diagonal of the matrix D of Eq. (5) for a network
// with n nodes: +alpha at every cold node, -alpha at every hot node,
// zero elsewhere.
//
// Sign note: the paper's Eq. (5) text lists alpha_k = +alpha for
// k in HOT; with the system written as (G - i*D) theta = p the Peltier
// conductor +alpha*i at the cold node must *add* to the diagonal of
// (G - i*D), i.e. D_kk = -alpha for k in CLD, and symmetrically the
// -alpha*i conductor at the hot node requires D_kk = +alpha... Working
// through Figure 4: cold node gains conductor +alpha*i to ground, so
// G_kk picks up +alpha*i, equivalently (G - i*D)_kk with D_kk = -alpha.
// Hot node gains -alpha*i, so D_kk = +alpha. That matches Eq. (5)'s
// "+alpha if k in HOT, -alpha if k in CLD".
func (a *Array) DVector(n int) []float64 {
	d := make([]float64, n)
	for k := range a.Tiles {
		d[a.Hot[k]] += a.Params.Seebeck
		d[a.Cold[k]] -= a.Params.Seebeck
	}
	return d
}

// JoulePower adds the r*i^2/2 Joule heat sources of every device to the
// nodal power vector p (Eq. 4's definition of p_k for k in HOT u CLD).
func (a *Array) JoulePower(p []float64, i float64) {
	half := 0.5 * a.Params.Resistance * i * i
	for k := range a.Tiles {
		p[a.Hot[k]] += half
		p[a.Cold[k]] += half
	}
}

// TotalInputPower sums Eq. (3) over the devices for the solved
// temperature field theta at current i.
func (a *Array) TotalInputPower(theta []float64, i float64) float64 {
	var s float64
	for k := range a.Tiles {
		s += a.Params.InputPower(i, theta[a.Hot[k]], theta[a.Cold[k]])
	}
	return s
}

// DeviceVoltage returns one device's terminal voltage at current i:
// the ohmic drop r*i plus the Seebeck back-EMF alpha*(theta_h - theta_c).
func (d DeviceParams) DeviceVoltage(i, thetaHot, thetaCold float64) float64 {
	return d.Resistance*i + d.Seebeck*(thetaHot-thetaCold)
}

// StringVoltage returns the supply voltage the external source must
// provide across the electrically-series device string (Section III.B:
// one extra pin, devices in series) in the solved field theta at
// current i. Note v * i recovers TotalInputPower, since each device's
// p = (r*i + alpha*dT) * i.
func (a *Array) StringVoltage(theta []float64, i float64) float64 {
	var v float64
	for k := range a.Tiles {
		v += a.Params.DeviceVoltage(i, theta[a.Hot[k]], theta[a.Cold[k]])
	}
	return v
}
