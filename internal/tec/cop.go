package tec

import (
	"math"

	"tecopt/internal/num"
)

// Thermoelectric figures of merit and coefficient of performance, after
// Rowe (CRC Handbook of Thermoelectrics, the paper's reference [17]).
// The paper identifies the runaway current lambda_m with the operating
// point where the cooler's COP reaches zero ("Peltier cooling is offset
// by ohmic heating and heat conduction"); these helpers expose that
// device-level view.

// ZT returns the dimensionless thermoelectric figure of merit
// Z*T = alpha^2 * T / (r * kappa) at absolute temperature t.
// Thin-film superlattice devices reach ZT ~ 1-2 at room temperature.
func (d DeviceParams) ZT(t float64) float64 {
	return d.Seebeck * d.Seebeck * t / (d.Resistance * d.Kappa)
}

// COP returns the coefficient of performance q_c / p_in at the given
// operating point. It is negative when the device heats its cold side
// (q_c < 0) and undefined (returned as +Inf) at zero input power.
func (d DeviceParams) COP(i, thetaHot, thetaCold float64) float64 {
	p := d.InputPower(i, thetaHot, thetaCold)
	if num.IsZero(p) {
		return math.Inf(1)
	}
	return d.ColdSideFlux(i, thetaHot, thetaCold) / p
}

// MaxCoolingCurrent returns the current that maximizes the cold-side
// flux q_c for fixed side temperatures: dq_c/di = alpha*theta_c - r*i = 0
// gives i_q = alpha*theta_c / r (the textbook optimum).
func (d DeviceParams) MaxCoolingCurrent(thetaCold float64) float64 {
	return d.Seebeck * thetaCold / d.Resistance
}

// MaxDeltaT returns the largest hot-minus-cold temperature difference
// the device can sustain with zero cold-side load:
// dT_max = Z * theta_c^2 / 2, the classic result for theta_c held fixed.
func (d DeviceParams) MaxDeltaT(thetaCold float64) float64 {
	z := d.Seebeck * d.Seebeck / (d.Resistance * d.Kappa)
	return 0.5 * z * thetaCold * thetaCold
}

// ZeroCOPCurrent returns the current at which q_c crosses zero (COP = 0)
// for the given side temperatures — the device-level analogue of the
// paper's thermal-runaway condition. It solves
// alpha*i*theta_c - r*i^2/2 - kappa*dT = 0 for the larger root and
// returns 0 if q_c never becomes positive (conduction dominates).
func (d DeviceParams) ZeroCOPCurrent(thetaHot, thetaCold float64) float64 {
	// -r/2 * i^2 + alpha*theta_c * i - kappa*(thetaHot-thetaCold) = 0.
	a := -0.5 * d.Resistance
	b := d.Seebeck * thetaCold
	c := -d.Kappa * (thetaHot - thetaCold)
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0
	}
	// Larger root of the downward parabola.
	return (-b - math.Sqrt(disc)) / (2 * a)
}

// ArrayCOP evaluates the aggregate COP of a deployed array in the solved
// field theta at current i: total cold-side flux over total electrical
// input power.
func (a *Array) ArrayCOP(theta []float64, i float64) float64 {
	var qc, p float64
	for k := range a.Tiles {
		th, tc := theta[a.Hot[k]], theta[a.Cold[k]]
		qc += a.Params.ColdSideFlux(i, th, tc)
		p += a.Params.InputPower(i, th, tc)
	}
	if num.IsZero(p) {
		return math.Inf(1)
	}
	return qc / p
}
