package tec

import (
	"math"
	"testing"

	"tecopt/internal/material"
	"tecopt/internal/num"
	"tecopt/internal/thermal"
)

func TestChowdhuryDeviceValid(t *testing.T) {
	d := ChowdhuryDevice()
	if err := d.Validate(); err != nil {
		t.Fatalf("reference device invalid: %v", err)
	}
	// Sanity ranges for a thin-film device.
	if d.Seebeck < 1e-4 || d.Seebeck > 1e-3 {
		t.Errorf("Seebeck %g outside thin-film range", d.Seebeck)
	}
	if d.Resistance < 1e-4 || d.Resistance > 0.1 {
		t.Errorf("resistance %g outside milliohm range", d.Resistance)
	}
	if d.Kappa <= 0 || d.Kappa > 1 {
		t.Errorf("kappa %g implausible", d.Kappa)
	}
}

func TestValidateRejections(t *testing.T) {
	base := ChowdhuryDevice()
	mutations := []func(*DeviceParams){
		func(d *DeviceParams) { d.Seebeck = 0 },
		func(d *DeviceParams) { d.Resistance = -1 },
		func(d *DeviceParams) { d.Kappa = 0 },
		func(d *DeviceParams) { d.ContactCold = 0 },
		func(d *DeviceParams) { d.ContactHot = -2 },
	}
	for i, m := range mutations {
		d := base
		m(&d)
		if d.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestFluxEquations(t *testing.T) {
	d := DeviceParams{Seebeck: 1e-3, Resistance: 0.01, Kappa: 0.05, ContactCold: 1, ContactHot: 1}
	i, th, tc := 5.0, 350.0, 340.0
	qc := d.ColdSideFlux(i, th, tc)
	qh := d.HotSideFlux(i, th, tc)
	// Eq. 1: 1e-3*5*340 - 0.5*0.01*25 - 0.05*10 = 1.7 - 0.125 - 0.5
	if math.Abs(qc-1.075) > 1e-12 {
		t.Errorf("qc = %v, want 1.075", qc)
	}
	// Eq. 2: 1e-3*5*350 + 0.125 - 0.5 = 1.375
	if math.Abs(qh-1.375) > 1e-12 {
		t.Errorf("qh = %v, want 1.375", qh)
	}
	// Eq. 3: input power equals qh - qc.
	p := d.InputPower(i, th, tc)
	if math.Abs(p-(qh-qc)) > 1e-12 {
		t.Errorf("p = %v, qh-qc = %v", p, qh-qc)
	}
	// Zero current: pure conduction, no input power.
	if !num.IsZero(d.InputPower(0, th, tc)) {
		t.Error("nonzero input power at i=0")
	}
	if qc0 := d.ColdSideFlux(0, th, tc); math.Abs(qc0+0.5) > 1e-12 {
		t.Errorf("qc(0) = %v, want -0.5 (back conduction)", qc0)
	}
}

func buildWithSites(t *testing.T, sites []int) (*thermal.PackageNetwork, *Array) {
	t.Helper()
	opts := thermal.DefaultBuildOptions()
	opts.TECSites = map[int]bool{}
	for _, s := range sites {
		opts.TECSites[s] = true
	}
	pn, err := thermal.BuildPackage(material.DefaultPackage(), opts)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := Attach(pn, ChowdhuryDevice(), sites)
	if err != nil {
		t.Fatal(err)
	}
	return pn, arr
}

func TestAttach(t *testing.T) {
	sites := []int{10, 20, 30}
	pn, arr := buildWithSites(t, sites)
	if arr.Count() != 3 {
		t.Fatalf("Count = %d", arr.Count())
	}
	for k, tile := range arr.Tiles {
		if pn.ColdNode[tile] != arr.Cold[k] || pn.HotNode[tile] != arr.Hot[k] {
			t.Fatal("node bookkeeping mismatch")
		}
	}
}

func TestAttachInvalidDevice(t *testing.T) {
	opts := thermal.DefaultBuildOptions()
	opts.TECSites = map[int]bool{1: true}
	pn, err := thermal.BuildPackage(material.DefaultPackage(), opts)
	if err != nil {
		t.Fatal(err)
	}
	bad := ChowdhuryDevice()
	bad.Seebeck = 0
	if _, err := Attach(pn, bad, []int{1}); err == nil {
		t.Fatal("invalid device accepted")
	}
	// Unreserved site must fail too.
	if _, err := Attach(pn, ChowdhuryDevice(), []int{2}); err == nil {
		t.Fatal("unreserved site accepted")
	}
}

func TestDVectorSigns(t *testing.T) {
	pn, arr := buildWithSites(t, []int{50})
	d := arr.DVector(pn.Net.NumNodes())
	alpha := arr.Params.Seebeck
	if got := d[arr.Hot[0]]; !num.ExactEqual(got, +alpha) {
		t.Errorf("D at hot node = %v, want +%v (Eq. 5)", got, alpha)
	}
	if got := d[arr.Cold[0]]; !num.ExactEqual(got, -alpha) {
		t.Errorf("D at cold node = %v, want -%v (Eq. 5)", got, alpha)
	}
	var nz int
	for _, v := range d {
		if !num.IsZero(v) {
			nz++
		}
	}
	if nz != 2 {
		t.Errorf("D has %d nonzeros, want 2", nz)
	}
}

func TestJoulePower(t *testing.T) {
	pn, arr := buildWithSites(t, []int{50, 60})
	p := make([]float64, pn.Net.NumNodes())
	arr.JoulePower(p, 4)
	half := 0.5 * arr.Params.Resistance * 16
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-4*half) > 1e-15 {
		t.Fatalf("total joule = %v, want %v", sum, 4*half)
	}
	if !num.ExactEqual(p[arr.Hot[0]], half) || !num.ExactEqual(p[arr.Cold[1]], half) {
		t.Fatal("joule not placed on device nodes")
	}
}

func TestTotalInputPower(t *testing.T) {
	pn, arr := buildWithSites(t, []int{50})
	theta := make([]float64, pn.Net.NumNodes())
	theta[arr.Hot[0]] = 330
	theta[arr.Cold[0]] = 320
	currentA := 3.0
	deltaK := theta[arr.Hot[0]] - theta[arr.Cold[0]]
	want := arr.Params.Resistance*currentA*currentA + arr.Params.Seebeck*currentA*deltaK
	if got := arr.TotalInputPower(theta, currentA); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TotalInputPower = %v, want %v", got, want)
	}
}

func TestStringVoltagePowerIdentity(t *testing.T) {
	pn, arr := buildWithSites(t, []int{50, 60, 70})
	theta := make([]float64, pn.Net.NumNodes())
	for i := range theta {
		theta[i] = 340
	}
	theta[arr.Hot[0]] = 345
	theta[arr.Cold[0]] = 338
	theta[arr.Hot[2]] = 347
	theta[arr.Cold[2]] = 339
	i := 5.0
	v := arr.StringVoltage(theta, i)
	p := arr.TotalInputPower(theta, i)
	if math.Abs(v*i-p) > 1e-12*(1+math.Abs(p)) {
		t.Fatalf("v*i = %v != total power %v", v*i, p)
	}
	if v <= 0 {
		t.Fatalf("string voltage %v not positive at %v A", v, i)
	}
	// Per-device identity too.
	dv := arr.Params.DeviceVoltage(i, 345, 338)
	dp := arr.Params.InputPower(i, 345, 338)
	if math.Abs(dv*i-dp) > 1e-12 {
		t.Fatalf("device v*i = %v != p = %v", dv*i, dp)
	}
}
