package tecerr

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
)

// TestCodeMappingsExhaustive iterates every Code the enum declares
// (0..numCodes-1, so a newly added code is covered without touching
// this test) and requires a stable name, an exit status, and an HTTP
// status for each. Adding a Code without extending String, exitStatus,
// or httpStatus fails here — the compilation-adjacent completeness
// check for the three switches.
func TestCodeMappingsExhaustive(t *testing.T) {
	seenExit := map[int]Code{}
	for c := Code(0); c < numCodes; c++ {
		name := c.String()
		if strings.HasPrefix(name, "Code(") {
			t.Errorf("Code %d has no String() name", int(c))
		}
		exit, ok := c.exitStatus()
		if !ok {
			t.Errorf("Code %s (%d) has no exit-status mapping", name, int(c))
		}
		if exit == 0 {
			t.Errorf("Code %s maps to exit 0, which means success", name)
		}
		if prev, dup := seenExit[exit]; dup {
			t.Errorf("Codes %s and %s share exit status %d", prev, name, exit)
		}
		seenExit[exit] = c
		status, ok := c.httpStatus()
		if !ok {
			t.Errorf("Code %s (%d) has no HTTP-status mapping", name, int(c))
		}
		if status < 400 || status > 599 {
			t.Errorf("Code %s maps to HTTP %d, want an error status", name, status)
		}
	}

	// The guard itself must work: a code past the enum is unmapped.
	if _, ok := numCodes.exitStatus(); ok {
		t.Errorf("exitStatus claims to map the out-of-range code %d", int(numCodes))
	}
	if _, ok := numCodes.httpStatus(); ok {
		t.Errorf("httpStatus claims to map the out-of-range code %d", int(numCodes))
	}
}

// TestHTTPStatus pins the externally observable contract of the
// serving layer: status per failure class, through wrapping.
func TestHTTPStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusOK},
		{errors.New("untyped"), http.StatusInternalServerError},
		{New(CodeInvalidInput, "t", "bad"), http.StatusBadRequest},
		{New(CodeNotPD, "t", "beyond lambda_m"), http.StatusUnprocessableEntity},
		{New(CodeDiverged, "t", "cg"), http.StatusInternalServerError},
		{Cancelled("t", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{New(CodeDegraded, "t", "fallback"), http.StatusInternalServerError},
		{FromPanic("t", "boom", nil), http.StatusInternalServerError},
		{New(CodeOverload, "t", "queue full"), http.StatusTooManyRequests},
		{New(CodeUnavailable, "t", "draining"), http.StatusServiceUnavailable},
		// Wrapping must not change the class.
		{Wrap(CodeInternal, "outer", "ctx", New(CodeOverload, "t", "queue full")), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := HTTPStatus(tc.err); got != tc.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
	// The outermost code wins for wrapped errors (same rule as CodeOf).
	inner := New(CodeNotPD, "in", "np")
	if got := HTTPStatus(Wrap(CodeOverload, "out", "shed", inner)); got != http.StatusTooManyRequests {
		t.Errorf("wrapped HTTPStatus = %d, want 429 from the outermost code", got)
	}
}

// TestNewCodeSentinels checks the service-layer sentinels match by
// code like the older ones.
func TestNewCodeSentinels(t *testing.T) {
	if !errors.Is(New(CodeOverload, "t", "x"), ErrOverload) {
		t.Error("CodeOverload error does not match ErrOverload")
	}
	if !errors.Is(New(CodeUnavailable, "t", "x"), ErrUnavailable) {
		t.Error("CodeUnavailable error does not match ErrUnavailable")
	}
	if errors.Is(New(CodeOverload, "t", "x"), ErrUnavailable) {
		t.Error("CodeOverload error must not match ErrUnavailable")
	}
	if ExitCode(New(CodeOverload, "t", "x")) != 8 || ExitCode(New(CodeUnavailable, "t", "x")) != 9 {
		t.Error("new codes lost their exit statuses")
	}
}
