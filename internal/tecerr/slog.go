package tecerr

import (
	"errors"
	"log/slog"
)

// LogAttrs renders err as structured logging attributes: the error
// message plus, when err carries a classified *Error anywhere in its
// chain, the tecerr code and operation. CLIs pass the result to the
// shared obs slog handler so every logged failure is greppable by
// code:
//
//	logger.Error("run failed", tecerr.LogAttrs(err)...)
//
// A nil err returns nil.
func LogAttrs(err error) []any {
	if err == nil {
		return nil
	}
	attrs := []any{slog.String("err", err.Error())}
	var te *Error
	if errors.As(err, &te) {
		attrs = append(attrs, slog.String("code", te.Code.String()))
		if te.Op != "" {
			attrs = append(attrs, slog.String("op", te.Op))
		}
	}
	return attrs
}
