package tecerr

import "net/http"

// HTTP status contract of the taxonomy, used by the serving layer
// (cmd/tecserve). Like exitStatus it is a single exhaustive table: a
// new Code added without a row here fails TestCodeMappingsExhaustive.
//
//	internal      500  unclassified failure inside the solver stack
//	invalid_input 400  the request itself is malformed or unphysical
//	not_pd        422  the operating point is at/beyond the runaway
//	                   limit lambda_m — well-formed but unsolvable
//	diverged      500  an iterative solve failed to converge
//	cancelled     504  the request's deadline expired (work cut short)
//	degraded      500  a degraded result surfaced as an error
//	panic         500  a recovered worker panic
//	overload      429  shed by admission control (queue full); retry
//	unavailable   503  the server is draining / not accepting work
//
// Several codes legitimately share 500 — they are all "the server
// failed to produce a result" to an HTTP client — so responses must
// carry the Code's String() in the body for class-exact matching.
func (c Code) httpStatus() (status int, ok bool) {
	switch c {
	case CodeInternal:
		return http.StatusInternalServerError, true
	case CodeInvalidInput:
		return http.StatusBadRequest, true
	case CodeNotPD:
		return http.StatusUnprocessableEntity, true
	case CodeDiverged:
		return http.StatusInternalServerError, true
	case CodeCancelled:
		return http.StatusGatewayTimeout, true
	case CodeDegraded:
		return http.StatusInternalServerError, true
	case CodePanic:
		return http.StatusInternalServerError, true
	case CodeOverload:
		return http.StatusTooManyRequests, true
	case CodeUnavailable:
		return http.StatusServiceUnavailable, true
	}
	return http.StatusInternalServerError, false
}

// HTTPStatus maps an error to the HTTP response status of the table
// above, classifying it with CodeOf. nil maps to 200; unclassified
// errors to 500.
func HTTPStatus(err error) int {
	if err == nil {
		return http.StatusOK
	}
	status, _ := CodeOf(err).httpStatus()
	return status
}
