// Package tecerr is the typed error taxonomy of the solver stack.
//
// Every failure mode that matters to a caller — malformed input, loss of
// positive definiteness at the runaway limit, iterative divergence,
// cancellation, degraded-but-usable results, recovered panics — gets a
// Code, and every error produced by the solver packages (sparse,
// thermal, core, engine) is either a *Error carrying one of those codes
// or wraps one. Callers match on the exported code sentinels with
// errors.Is:
//
//	if errors.Is(err, tecerr.ErrNotPD) { ... beyond lambda_m ... }
//
// which matches any *Error with CodeNotPD anywhere in the chain,
// regardless of which package produced it. CLIs map the code to a
// distinct process exit status with ExitCode.
//
// The package is a leaf: it imports only the standard library, so every
// layer of the stack can depend on it without cycles.
package tecerr

import (
	"context"
	"errors"
	"fmt"
)

// Code classifies a solver failure.
type Code int

const (
	// CodeInternal is the catch-all for failures with no better class.
	CodeInternal Code = iota
	// CodeInvalidInput marks malformed caller input: NaN/Inf parameters,
	// negative conductances, mismatched vector lengths, bad tilings.
	CodeInvalidInput
	// CodeNotPD marks a loss of positive definiteness — the operating
	// point is at or beyond the thermal-runaway limit lambda_m.
	CodeNotPD
	// CodeDiverged marks an iterative solve that failed to converge or
	// actively diverged (NaN/Inf or growing residuals).
	CodeDiverged
	// CodeCancelled marks work cut short by context cancellation or a
	// deadline.
	CodeCancelled
	// CodeDegraded marks a result obtained only after falling back to a
	// slower or less accurate method — usable, but worth surfacing.
	CodeDegraded
	// CodePanic marks a panic recovered inside a worker and converted to
	// an error instead of crashing the process.
	CodePanic
	// CodeOverload marks work rejected by admission control: a bounded
	// queue was full and the request was shed rather than accepted into
	// an ever-growing backlog. The work never ran; retrying later is
	// legitimate.
	CodeOverload
	// CodeUnavailable marks work refused because the serving process is
	// shutting down (draining) or otherwise not accepting requests.
	CodeUnavailable

	// numCodes counts the codes above. New codes MUST be added above
	// this line so the exhaustive-mapping tests (String, ExitCode,
	// HTTPStatus) iterate them automatically — an unmapped code fails
	// TestCodeMappingsExhaustive the moment it exists.
	numCodes
)

// String returns the code's stable lowercase name.
func (c Code) String() string {
	switch c {
	case CodeInternal:
		return "internal"
	case CodeInvalidInput:
		return "invalid_input"
	case CodeNotPD:
		return "not_pd"
	case CodeDiverged:
		return "diverged"
	case CodeCancelled:
		return "cancelled"
	case CodeDegraded:
		return "degraded"
	case CodePanic:
		return "panic"
	case CodeOverload:
		return "overload"
	case CodeUnavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("Code(%d)", int(c))
	}
}

// sentinel is the target type behind the exported Err* values. A
// *Error matches a sentinel (via Error.Is) when their codes agree, so
// errors.Is(err, tecerr.ErrDiverged) is a code test, not an identity
// test.
type sentinel struct{ code Code }

func (s sentinel) Error() string { return "tecerr: " + s.code.String() }

// Code sentinels for errors.Is matching. These are classes, not
// instances: solver packages return *Error values (or their own typed
// sentinels built on *Error), and those match here by code.
var (
	ErrInvalidInput error = sentinel{CodeInvalidInput}
	ErrNotPD        error = sentinel{CodeNotPD}
	ErrDiverged     error = sentinel{CodeDiverged}
	ErrCancelled    error = sentinel{CodeCancelled}
	ErrDegraded     error = sentinel{CodeDegraded}
	ErrPanic        error = sentinel{CodePanic}
	ErrOverload     error = sentinel{CodeOverload}
	ErrUnavailable  error = sentinel{CodeUnavailable}
)

// Error is a classified solver error. Msg carries the complete
// human-readable message (package-prefixed, like the fmt.Errorf
// strings it replaced); Op names the operation for programmatic
// grouping; Err is the wrapped cause, if any.
type Error struct {
	Code Code
	Op   string // e.g. "sparse.cg", "thermal.factor", "engine.pool"
	Msg  string
	Err  error
	// Stack is the recovered goroutine stack, set only for CodePanic.
	Stack []byte
}

// Error returns Msg, with the wrapped cause appended when present.
func (e *Error) Error() string {
	switch {
	case e.Err == nil:
		return e.Msg
	case e.Msg == "":
		return e.Err.Error()
	default:
		return e.Msg + ": " + e.Err.Error()
	}
}

// Unwrap exposes the wrapped cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches the code sentinels: errors.Is(e, tecerr.ErrNotPD) is true
// for any *Error with CodeNotPD. Two distinct *Error values never match
// each other through Is — identity comparison is left to errors.Is's
// default == test, so package-level sentinels built as *Error values
// keep their exact-identity semantics.
func (e *Error) Is(target error) bool {
	s, ok := target.(sentinel)
	return ok && e.Code == s.code
}

// New builds a classified error with a fixed message.
func New(code Code, op, msg string) *Error {
	return &Error{Code: code, Op: op, Msg: msg}
}

// Newf builds a classified error with a formatted message.
func Newf(code Code, op, format string, args ...any) *Error {
	return &Error{Code: code, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// Wrap classifies an existing error under a fixed message prefix.
func Wrap(code Code, op, msg string, err error) *Error {
	return &Error{Code: code, Op: op, Msg: msg, Err: err}
}

// Wrapf classifies an existing error under a formatted message prefix.
func Wrapf(code Code, op string, err error, format string, args ...any) *Error {
	return &Error{Code: code, Op: op, Msg: fmt.Sprintf(format, args...), Err: err}
}

// FromPanic converts a recovered panic value and its goroutine stack to
// a CodePanic error. Use it from a recover() handler:
//
//	defer func() {
//		if v := recover(); v != nil {
//			err = tecerr.FromPanic("engine.pool", v, debug.Stack())
//		}
//	}()
func FromPanic(op string, v any, stack []byte) *Error {
	e := &Error{Code: CodePanic, Op: op, Msg: fmt.Sprintf("%s: recovered panic: %v", op, v), Stack: stack}
	if cause, ok := v.(error); ok {
		e.Err = cause
		e.Msg = fmt.Sprintf("%s: recovered panic", op)
	}
	return e
}

// Cancelled wraps a context error (ctx.Err()) as CodeCancelled,
// prefixed with op.
func Cancelled(op string, cause error) *Error {
	return &Error{Code: CodeCancelled, Op: op, Msg: op + ": cancelled", Err: cause}
}

// CodeOf extracts the classification of err: the code of the outermost
// *Error in the chain, or CodeCancelled for bare context errors, or
// CodeInternal for anything unclassified (including nil — callers
// should test nil first).
func CodeOf(err error) Code {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	var s sentinel
	if errors.As(err, &s) {
		return s.code
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return CodeCancelled
	}
	return CodeInternal
}

// exitStatus is the one-per-code process exit table. ok is false for a
// code the table does not know, which the exhaustive-mapping test turns
// into a failure the moment a new code is added unmapped.
func (c Code) exitStatus() (status int, ok bool) {
	switch c {
	case CodeInternal:
		return 1, true
	case CodeInvalidInput:
		return 2, true
	case CodeNotPD:
		return 3, true
	case CodeDiverged:
		return 4, true
	case CodeCancelled:
		return 5, true
	case CodeDegraded:
		return 6, true
	case CodePanic:
		return 7, true
	case CodeOverload:
		return 8, true
	case CodeUnavailable:
		return 9, true
	}
	return 1, false
}

// ExitCode maps an error to a process exit status, one per code, so
// scripts driving the CLIs can distinguish "bad input" from "beyond the
// runaway limit" from "timed out". nil maps to 0 and unclassified
// errors to 1.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	status, _ := CodeOf(err).exitStatus()
	return status
}
