package tecerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestErrorMessage(t *testing.T) {
	e := Newf(CodeInvalidInput, "sparse.cg", "sparse: CG rhs length %d, want %d", 3, 5)
	if got, want := e.Error(), "sparse: CG rhs length 3, want 5"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	cause := errors.New("inner")
	w := Wrap(CodeDiverged, "op", "outer", cause)
	if got, want := w.Error(), "outer: inner"; got != want {
		t.Fatalf("wrapped Error() = %q, want %q", got, want)
	}
	if !errors.Is(w, cause) {
		t.Fatal("wrapped cause not reachable via errors.Is")
	}
}

func TestCodeSentinelMatching(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
	}{
		{New(CodeInvalidInput, "op", "m"), ErrInvalidInput},
		{New(CodeNotPD, "op", "m"), ErrNotPD},
		{New(CodeDiverged, "op", "m"), ErrDiverged},
		{New(CodeCancelled, "op", "m"), ErrCancelled},
		{New(CodeDegraded, "op", "m"), ErrDegraded},
		{New(CodePanic, "op", "m"), ErrPanic},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("errors.Is(%v, %v) = false, want true", c.err, c.sentinel)
		}
	}
	// Cross-code matches must fail.
	if errors.Is(New(CodeNotPD, "op", "m"), ErrDiverged) {
		t.Error("CodeNotPD matched ErrDiverged")
	}
	// Matching survives fmt.Errorf %w wrapping.
	wrapped := fmt.Errorf("outer: %w", New(CodeNotPD, "op", "m"))
	if !errors.Is(wrapped, ErrNotPD) {
		t.Error("code match lost through %w wrapping")
	}
}

func TestDistinctErrorValuesKeepIdentity(t *testing.T) {
	// Two *Error values with the same code are NOT errors.Is-equal:
	// package-level sentinels built as *Error keep exact identity.
	a := New(CodeNotPD, "a", "a failed")
	b := New(CodeNotPD, "b", "b failed")
	if errors.Is(a, b) {
		t.Fatal("two distinct *Error values matched each other")
	}
	if !errors.Is(fmt.Errorf("x: %w", a), a) {
		t.Fatal("identity match lost through wrapping")
	}
}

func TestCodeOf(t *testing.T) {
	if got := CodeOf(New(CodeDiverged, "op", "m")); got != CodeDiverged {
		t.Errorf("CodeOf(*Error) = %v", got)
	}
	if got := CodeOf(fmt.Errorf("x: %w", New(CodeNotPD, "op", "m"))); got != CodeNotPD {
		t.Errorf("CodeOf(wrapped) = %v", got)
	}
	if got := CodeOf(context.Canceled); got != CodeCancelled {
		t.Errorf("CodeOf(context.Canceled) = %v", got)
	}
	if got := CodeOf(context.DeadlineExceeded); got != CodeCancelled {
		t.Errorf("CodeOf(context.DeadlineExceeded) = %v", got)
	}
	if got := CodeOf(errors.New("plain")); got != CodeInternal {
		t.Errorf("CodeOf(plain) = %v", got)
	}
	// The sentinel itself classifies.
	if got := CodeOf(ErrDegraded); got != CodeDegraded {
		t.Errorf("CodeOf(ErrDegraded) = %v", got)
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{errors.New("plain"), 1},
		{New(CodeInvalidInput, "op", "m"), 2},
		{New(CodeNotPD, "op", "m"), 3},
		{New(CodeDiverged, "op", "m"), 4},
		{context.DeadlineExceeded, 5},
		{New(CodeDegraded, "op", "m"), 6},
		{New(CodePanic, "op", "m"), 7},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestFromPanic(t *testing.T) {
	e := FromPanic("engine.pool", "boom", []byte("stack"))
	if !errors.Is(e, ErrPanic) {
		t.Fatal("FromPanic not matched by ErrPanic")
	}
	if string(e.Stack) != "stack" {
		t.Fatalf("Stack = %q", e.Stack)
	}
	if got, want := e.Error(), "engine.pool: recovered panic: boom"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	// Panicking with an error keeps the cause reachable.
	cause := errors.New("cause")
	if !errors.Is(FromPanic("op", cause, nil), cause) {
		t.Fatal("error panic value not reachable via errors.Is")
	}
}

func TestCancelled(t *testing.T) {
	e := Cancelled("engine.pool", context.Canceled)
	if !errors.Is(e, ErrCancelled) || !errors.Is(e, context.Canceled) {
		t.Fatal("Cancelled must match both ErrCancelled and the context cause")
	}
	if got, want := e.Error(), "engine.pool: cancelled: context canceled"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
}

func TestCodeString(t *testing.T) {
	want := map[Code]string{
		CodeInternal:     "internal",
		CodeInvalidInput: "invalid_input",
		CodeNotPD:        "not_pd",
		CodeDiverged:     "diverged",
		CodeCancelled:    "cancelled",
		CodeDegraded:     "degraded",
		CodePanic:        "panic",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Code(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
}
