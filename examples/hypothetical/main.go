// Example hypothetical reproduces the paper's Section VI.B flow on a
// generated benchmark chip: random floorplan with two hot units, greedy
// deployment at 85 C, and — when the limit is unreachable (the paper's
// HC06/HC09 situation) — the relaxed-limit retry.
//
// Run with:
//
//	go run ./examples/hypothetical [seed]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"tecopt"

	"tecopt/internal/num"
)

func main() {
	seed := int64(3) // HC03 is one of the chips that fails at 85 C
	if len(os.Args) > 1 {
		v, err := strconv.ParseInt(os.Args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", os.Args[1], err)
		}
		seed = v
	}
	chip, err := tecopt.HypotheticalChip(fmt.Sprintf("HC%02d", seed), seed, tecopt.DefaultHCSpec())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip %s: %.2f W total, %d units, hot pair %v (%.0f%% of power)\n",
		chip.Name, chip.TotalPower, len(chip.Floorplan.Units), chip.HotUnits,
		100*(chip.UnitPower[chip.HotUnits[0]]+chip.UnitPower[chip.HotUnits[1]])/chip.TotalPower)
	fmt.Print(tecopt.DeploymentMap(chip.Floorplan, chip.Grid, nil))

	cfg := tecopt.Config{TilePower: chip.TilePower}
	for limit := 85.0; limit <= 95; limit++ {
		res, err := tecopt.GreedyDeploy(cfg, tecopt.CelsiusToKelvin(limit), tecopt.CurrentOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if num.ExactEqual(limit, 85) {
			fmt.Printf("\npassive peak %.2f C\n", tecopt.KelvinToCelsius(res.NoTECPeakK))
		}
		if !res.Success {
			fmt.Printf("limit %.0f C: INFEASIBLE (best peak %.2f C with %d TECs) — relaxing like the paper's HC06/HC09\n",
				limit, tecopt.KelvinToCelsius(res.Current.PeakK), len(res.Sites))
			continue
		}
		fmt.Printf("limit %.0f C: %d TECs at %.2f A -> peak %.2f C (P_TEC %.2f W, %d iteration(s))\n",
			limit, len(res.Sites), res.Current.IOpt,
			tecopt.KelvinToCelsius(res.Current.PeakK), res.Current.TECPowerW, len(res.Iterations))
		fmt.Print(tecopt.DeploymentMap(chip.Floorplan, chip.Grid, res.Sites))
		break
	}
}
