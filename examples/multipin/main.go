// Example multipin explores the extension the paper leaves open: the
// single-extra-pin constraint (Section III.B) forces every TEC to share
// one supply current; with K pins the deployed devices split into K
// zones with independent currents, and chips with unequal hotspots can
// be cooled further.
//
// The example builds a two-hotspot chip, deploys TECs on both hotspots,
// and compares the paper's single shared current against 2- and 4-zone
// configurations.
//
// Run with:
//
//	go run ./examples/multipin
package main

import (
	"fmt"
	"log"

	"tecopt"
)

func main() {
	// A synthetic 12x12 chip with two unequal hotspots.
	p := make([]float64, 144)
	for i := range p {
		p[i] = 0.06
	}
	strong := []int{38, 39, 50, 51} // 2x2 block, ~0.65 W/tile
	weak := []int{92, 93, 104, 105} // 2x2 block, ~0.35 W/tile
	for _, t := range strong {
		p[t] = 0.65
	}
	for _, t := range weak {
		p[t] = 0.35
	}
	cfg := tecopt.Config{TilePower: p}

	sites := append(append([]int{}, strong...), weak...)
	sys, err := tecopt.NewSystem(cfg, sites)
	if err != nil {
		log.Fatal(err)
	}
	peak0, _, _, err := sys.PeakAt(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-hotspot chip: passive peak %.2f C\n\n", tecopt.KelvinToCelsius(peak0))

	// Paper configuration: one pin, one shared current.
	single, err := sys.OptimizeCurrent(tecopt.CurrentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1 pin : I = %.2f A                  peak %.3f C, P_TEC %.2f W\n",
		single.IOpt, tecopt.KelvinToCelsius(single.PeakK), single.TECPowerW)

	// Multi-pin extension: 2 and 4 zones by die columns.
	for _, k := range []int{2, 4} {
		zoneOf, err := tecopt.ZoneByColumns(sys, k)
		if err != nil {
			log.Fatal(err)
		}
		zs, err := tecopt.NewZonedSystem(sys, zoneOf)
		if err != nil {
			log.Fatal(err)
		}
		res, err := zs.OptimizeZoned(tecopt.ZonedOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d pins: I = %s peak %.3f C, P_TEC %.2f W (gain %.3f C over 1 pin)\n",
			zs.Zones, fmtCurrents(res.Currents), tecopt.KelvinToCelsius(res.PeakK),
			res.TECPowerW, single.PeakK-res.PeakK)
	}
}

func fmtCurrents(cs []float64) string {
	s := "["
	for i, c := range cs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", c)
	}
	return s + "] A"
}
