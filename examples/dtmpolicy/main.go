// Example dtmpolicy realizes the paper's introductory vision of the
// active cooling system cooperating with runtime thermal management:
// the TEC deployment is chosen statically for the worst case (the
// paper's algorithm), and at runtime different current policies ride a
// bursty workload. The comparison shows what on-demand cooling buys:
// near-worst-case protection at a fraction of the always-on TEC energy.
//
// Run with:
//
//	go run ./examples/dtmpolicy
package main

import (
	"fmt"
	"log"

	"tecopt"
)

func main() {
	_, _, busy := tecopt.AlphaChip()
	// Idle profile: 25% of worst case everywhere.
	idle := make([]float64, len(busy))
	for i, p := range busy {
		idle[i] = 0.25 * p
	}

	// Statically configure the cooling system for the worst case.
	dep, err := tecopt.GreedyDeploy(tecopt.Config{TilePower: busy},
		tecopt.CelsiusToKelvin(85), tecopt.CurrentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sys := dep.System
	fmt.Printf("static design: %d TECs, worst-case I_opt %.2f A\n\n", len(dep.Sites), dep.Current.IOpt)

	// A bursty workload: busy and idle alternate.
	phases := []tecopt.PowerPhase{
		{Duration: 120, TilePower: busy},
		{Duration: 120, TilePower: idle},
		{Duration: 120, TilePower: busy},
		{Duration: 120, TilePower: idle},
	}
	limit := tecopt.CelsiusToKelvin(85)

	policies := []tecopt.Controller{
		tecopt.AlwaysOff{},
		tecopt.ConstantCurrent{CurrentA: dep.Current.IOpt},
		// The TEC's authority is ~10 C within one control period, so the
		// hysteresis band must be wider than that swing or the policy
		// chatters with its off half-cycles above the limit.
		&tecopt.BangBang{
			OnAboveK:  tecopt.CelsiusToKelvin(80),
			OffBelowK: tecopt.CelsiusToKelvin(68),
			CurrentA:  dep.Current.IOpt,
		},
		tecopt.Proportional{
			SetpointK: tecopt.CelsiusToKelvin(72),
			Gain:      2.0,
			MaxA:      dep.Current.IOpt,
		},
	}

	fmt.Printf("%-18s %12s %16s %14s\n", "policy", "max peak C", "time>85C (s)", "TEC energy J")
	for _, pol := range policies {
		res, err := tecopt.RunDTM(sys, phases, pol, limit, tecopt.DTMOptions{Dt: 0.05, ControlEvery: 10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12.2f %16.1f %14.1f\n",
			res.Policy, tecopt.KelvinToCelsius(res.MaxPeakK), res.TimeAboveLimitS, res.TECEnergyJ)
	}
	fmt.Println("\non-demand policies hold the limit at a fraction of the always-on energy")
}
