// Example alpha21364 reproduces the paper's Section VI.A study in full:
// passive analysis of the Alpha-21364-like chip, greedy TEC deployment,
// the full-cover baseline and its cooling-swing loss, the runaway limit,
// and the Theorem-4 optimality certificate for the optimized current.
//
// Run with:
//
//	go run ./examples/alpha21364
package main

import (
	"fmt"
	"log"

	"tecopt"
)

func main() {
	fp, grid, tilePower := tecopt.AlphaChip()
	cfg := tecopt.Config{TilePower: tilePower}

	// --- Passive chip -----------------------------------------------
	passive, err := tecopt.NewSystem(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	peak0, tile0, theta0, err := passive.PeakAt(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Passive analysis ==\n")
	fmt.Printf("total power %.1f W; peak %.2f C at tile %d\n",
		sum(tilePower), tecopt.KelvinToCelsius(peak0), tile0)
	over := passive.OverLimitTiles(theta0, tecopt.CelsiusToKelvin(85))
	fmt.Printf("tiles over 85 C: %v\n", over)
	for _, name := range tecopt.AlphaHotUnits() {
		tiles := grid.TilesOfUnit(fp, name)
		var mx float64
		for _, t := range tiles {
			if v := theta0[passive.PN.SilNode[t]]; v > mx {
				mx = v
			}
		}
		fmt.Printf("  %-8s %2d tiles, hottest %.2f C\n", name, len(tiles), tecopt.KelvinToCelsius(mx))
	}

	// --- Greedy deployment -------------------------------------------
	fmt.Printf("\n== Greedy deployment (limit 85 C) ==\n")
	res, err := tecopt.GreedyDeploy(cfg, tecopt.CelsiusToKelvin(85), tecopt.CurrentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("success=%v: %d TECs, I_opt %.2f A, peak %.2f C, P_TEC %.2f W\n",
		res.Success, len(res.Sites), res.Current.IOpt,
		tecopt.KelvinToCelsius(res.Current.PeakK), res.Current.TECPowerW)
	fmt.Print(tecopt.DeploymentMap(fp, grid, res.Sites))

	// --- Runaway limit and optimality --------------------------------
	fmt.Printf("\n== Runaway and optimality ==\n")
	lambda := res.Current.LambdaM
	fmt.Printf("lambda_m = %.2f A; operating at %.1f%% of the runaway limit\n",
		lambda, 100*res.Current.IOpt/lambda)
	certified, err := res.System.ConvexityCertificate(res.Current.PeakTile, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem-4 convexity certificate (4 subranges): %v\n", certified)
	if certified {
		fmt.Println("-> under Conjecture 1 the optimized current is globally optimal")
	}

	// --- Full-cover baseline ------------------------------------------
	fmt.Printf("\n== Full-cover baseline (TEC on every tile) ==\n")
	fc, _, err := tecopt.FullCover(cfg, tecopt.CurrentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min peak %.2f C at %.2f A; P_TEC %.2f W; lambda_m %.2f A\n",
		tecopt.KelvinToCelsius(fc.PeakK), fc.IOpt, fc.TECPowerW, fc.LambdaM)
	fmt.Printf("swing loss vs greedy: %.2f C — excessive deployment reduces cooling efficiency\n",
		fc.PeakK-res.Current.PeakK)
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
