// Example runawaydemo explores the thermal-runaway phenomenon of
// Section V.C.1 three ways:
//
//  1. statically, sweeping the steady-state peak temperature toward the
//     current limit lambda_m (where it diverges, Theorem 2);
//  2. structurally, showing lambda_m shrink as more TECs are deployed;
//  3. dynamically, integrating a transient trajectory at a current 20%
//     beyond lambda_m and watching the exponential blow-up (an
//     extension beyond the paper's steady-state analysis).
//
// Run with:
//
//	go run ./examples/runawaydemo
package main

import (
	"fmt"
	"log"

	"tecopt"
)

func main() {
	_, _, tilePower := tecopt.AlphaChip()
	cfg := tecopt.Config{TilePower: tilePower}

	dep, err := tecopt.GreedyDeploy(cfg, tecopt.CelsiusToKelvin(85), tecopt.CurrentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sys := dep.System
	lambda := dep.Current.LambdaM
	fmt.Printf("deployment: %d TECs, lambda_m = %.2f A, I_opt = %.2f A\n\n",
		len(dep.Sites), lambda, dep.Current.IOpt)

	// 1. Static divergence.
	fmt.Println("steady-state peak vs supply current (Theorem 2 divergence):")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 0.9999} {
		i := lambda * frac
		peak, _, _, err := sys.PeakAt(i)
		if err != nil {
			fmt.Printf("  i=%8.2f A: not positive definite (beyond lambda_m)\n", i)
			continue
		}
		fmt.Printf("  i=%8.2f A (%5.2f%% of lambda_m): peak %12.2f C\n",
			i, 100*frac, tecopt.KelvinToCelsius(peak))
	}

	// 2. lambda_m vs deployment size.
	fmt.Println("\nrunaway limit vs number of deployed TECs:")
	for _, n := range []int{1, 4, 16, 64, 144} {
		sites := make([]int, n)
		for k := range sites {
			sites[k] = k
		}
		s, err := tecopt.NewSystem(cfg, sites)
		if err != nil {
			log.Fatal(err)
		}
		lam, err := s.RunawayLimit(tecopt.RunawayOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d TECs: lambda_m = %7.2f A\n", n, lam)
	}

	// 3. Dynamic runaway (transient extension).
	fmt.Printf("\ntransient at 1.2 * lambda_m = %.1f A:\n", 1.2*lambda)
	tr, err := tecopt.Simulate(sys, []tecopt.Phase{{Current: 1.2 * lambda, Duration: 900}},
		tecopt.TransientOptions{Dt: 0.05, SampleEvery: 200, RunawayCeilingK: 600})
	if err != nil {
		log.Fatal(err)
	}
	times, peaks := tr.PeakSeries()
	for k := range times {
		fmt.Printf("  t=%7.1f s: peak %8.2f C\n", times[k], peaks[k])
	}
	if tr.Runaway {
		fmt.Println("  -> THERMAL RUNAWAY: the trajectory crossed the safety ceiling")
	}

	// Contrast: just below the limit the system stays stable.
	tr2, err := tecopt.Simulate(sys, []tecopt.Phase{{Current: 0.8 * lambda, Duration: 900}},
		tecopt.TransientOptions{Dt: 0.05, SampleEvery: 6000, RunawayCeilingK: 5000})
	if err != nil {
		log.Fatal(err)
	}
	last := tr2.Samples[len(tr2.Samples)-1]
	fmt.Printf("\nat 0.8 * lambda_m the system settles: peak %.2f C after %.0f s (runaway=%v)\n",
		tecopt.KelvinToCelsius(last.PeakK), last.TimeS, tr2.Runaway)
}
