// Quickstart: configure an active cooling system for the Alpha-21364-
// like study chip in ~20 lines using the public tecopt API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tecopt"
)

func main() {
	// The paper's study chip: floorplan, 12x12 TEC-site grid, and the
	// calibrated worst-case per-tile power profile (20.6 W total).
	fp, grid, tilePower := tecopt.AlphaChip()

	// Run the greedy deployment (Figure 5) against an 85 C limit; the
	// inner loop sets the shared supply current by convex optimization.
	res, err := tecopt.GreedyDeploy(
		tecopt.Config{TilePower: tilePower},
		tecopt.CelsiusToKelvin(85),
		tecopt.CurrentOptions{},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("passive peak:   %.2f C\n", tecopt.KelvinToCelsius(res.NoTECPeakK))
	fmt.Printf("deployment:     %d TEC devices on tiles %v\n", len(res.Sites), res.Sites)
	fmt.Printf("supply current: %.2f A (runaway limit %.1f A)\n", res.Current.IOpt, res.Current.LambdaM)
	fmt.Printf("cooled peak:    %.2f C (swing %.2f C)\n",
		tecopt.KelvinToCelsius(res.Current.PeakK),
		res.NoTECPeakK-res.Current.PeakK)
	fmt.Printf("TEC power:      %.2f W\n\n", res.Current.TECPowerW)
	fmt.Print(tecopt.DeploymentMap(fp, grid, res.Sites))
}
