// Command report runs every non-Table-I experiment — the model
// validation, Figures 6 and 7, and all four ablations — and prints a
// compact experiment log (the data behind EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"tecopt/internal/bench"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

// session is the tool-wide observability session; fatal flushes it
// before exiting with the error's tecerr taxonomy status.
var session *obs.Session

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	if cerr := session.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "report:", cerr)
	}
	session = nil
	os.Exit(tecerr.ExitCode(err))
}

func main() {
	parallel := flag.Int("parallel", 1, "Figure-6 points solved concurrently (0 = all cores, 1 = serial)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	var err error
	session, err = obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	// fatal closes the session on every error path, so -metrics-out
	// still captures whatever ran before a failure.
	defer func() {
		if err := session.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
		}
	}()
	ctx, cancel := obsFlags.Context()
	defer cancel()
	val, err := bench.RunValidation()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("validation: matched worst %.3f C | fine worst %.3f C mean bias %.3f C | ref nodes %d\n\n",
		val.WorstDiffC, val.FineWorstDiffC, val.FineMeanBiasC, val.ReferenceNodes)

	f6, err := bench.RunFigure6Opts(bench.Figure6Options{Points: 12, Parallel: *parallel, Ctx: ctx})
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench.FormatFigure6(f6))

	f7, err := bench.RunFigure7()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nFigure 7(b): %d TEC sites %v\n%s\n", len(f7.Sites), f7.Sites, f7.Map)

	opt, err := bench.RunOptimizerAblation()
	if err != nil {
		fatal(err)
	}
	sol, err := bench.RunSolverAblation()
	if err != nil {
		fatal(err)
	}
	cvx, err := bench.RunConvexityAblation([]int{1, 2, 4, 8})
	if err != nil {
		fatal(err)
	}
	lam, err := bench.RunLambdaToleranceAblation([]float64{1e-3, 1e-6, 1e-10})
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench.FormatAblations(opt, sol, cvx, lam))

	contact, err := bench.RunContactSensitivity([]float64{0.25, 0.5, 1, 2, 4})
	if err != nil {
		fatal(err)
	}
	strategies, err := bench.RunDeploymentStrategies()
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench.FormatSensitivity(contact, strategies))

	workloads, err := bench.RunWorkloadValidation()
	if err != nil {
		fatal(err)
	}
	res, err := bench.RunResolutionAblation([]int{10, 20, 30})
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench.FormatValidationStudies(workloads, res))

	active, err := bench.RunActiveValidation()
	if err != nil {
		fatal(err)
	}
	fmt.Print(active)
}
