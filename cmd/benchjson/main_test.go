package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tecopt/internal/num"
)

const sampleStream = `{"Action":"start","Package":"tecopt/internal/bench"}
{"Action":"output","Package":"tecopt/internal/bench","Output":"goos: linux\n"}
{"Action":"output","Package":"tecopt/internal/bench","Output":"BenchmarkEngine_TableI-8 \t       1\t1234567890 ns/op\t  456789 B/op\t    1234 allocs/op\n"}
{"Action":"output","Package":"tecopt/internal/core","Output":"BenchmarkEngine_HklSweep-8 \t       2\t 98765432 ns/op\t   12345 B/op\t      67 allocs/op\n"}
{"Action":"output","Package":"tecopt/internal/bench","Output":"PASS\n"}
{"Action":"pass","Package":"tecopt/internal/bench"}
`

func TestParseStream(t *testing.T) {
	results, err := parseStream(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	// Sorted by package: internal/bench before internal/core.
	first := results[0]
	if first.Name != "BenchmarkEngine_TableI" {
		t.Errorf("name = %q (procs suffix must be stripped)", first.Name)
	}
	if first.Package != "tecopt/internal/bench" {
		t.Errorf("package = %q", first.Package)
	}
	if first.Iterations != 1 || !num.ExactEqual(first.NsPerOp, 1234567890) {
		t.Errorf("iters/ns = %d/%v", first.Iterations, first.NsPerOp)
	}
	if first.BytesPerOp != 456789 || first.AllocsPerOp != 1234 {
		t.Errorf("B/op=%d allocs/op=%d", first.BytesPerOp, first.AllocsPerOp)
	}
	if results[1].Name != "BenchmarkEngine_HklSweep" || !num.ExactEqual(results[1].NsPerOp, 98765432) {
		t.Errorf("second result: %+v", results[1])
	}
}

// TestParseStreamReassemblesSplitLines covers what `go test -json`
// actually emits: the benchmark name flushes as its own output event
// (trailing tab, no newline) and the measurements arrive in the next
// event, possibly interleaved with another package's events.
func TestParseStreamReassemblesSplitLines(t *testing.T) {
	in := `{"Action":"output","Package":"p/a","Output":"BenchmarkEngine_HklSweep/serial         \t"}
{"Action":"output","Package":"p/b","Output":"BenchmarkOther \t"}
{"Action":"output","Package":"p/a","Output":"       1\t  78241064 ns/op\t27409240 B/op\t    1786 allocs/op\n"}
{"Action":"output","Package":"p/b","Output":" 3\t 11 ns/op\n"}
`
	results, err := parseStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	if results[0].Name != "BenchmarkEngine_HklSweep/serial" || results[0].AllocsPerOp != 1786 {
		t.Errorf("split-line result mangled: %+v", results[0])
	}
	if results[1].Name != "BenchmarkOther" || results[1].Iterations != 3 {
		t.Errorf("interleaved package mangled: %+v", results[1])
	}
}

func TestParseStreamIgnoresNoise(t *testing.T) {
	in := `{"Action":"output","Output":"goos: linux\n"}
{"Action":"output","Output":"Benchmark notes: ns/op is wall time\n"}
{"Action":"output","Output":"cpu: some chip\n"}
`
	results, err := parseStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("noise parsed as results: %+v", results)
	}
}

func TestRunEmitsStableJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleStream), &out, nil); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(results) != 2 {
		t.Fatalf("round-trip lost results: %+v", results)
	}
}

func TestRunFailsOnEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(""), &out, nil); err == nil {
		t.Fatal("empty input must fail: a benchmark run that produced nothing is a broken gate")
	}
}

// Merge semantics: re-measured entries overwrite the snapshot, entries
// the run did not touch survive, and the output stays sorted.
func TestRunMergeKeepsUntouchedEntries(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkEngine_TableI", Package: "tecopt/internal/bench", Iterations: 1, NsPerOp: 9e9},
		{Name: "BenchmarkEngine_Old", Package: "tecopt/internal/core", Iterations: 1, NsPerOp: 5},
	}
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleStream), &out, base); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d entries, want 3 (2 measured + 1 kept): %+v", len(results), results)
	}
	byKey := map[string]Result{}
	for _, r := range results {
		byKey[key(r)] = r
	}
	merged := byKey["tecopt/internal/bench\x00BenchmarkEngine_TableI"]
	if !num.ExactEqual(merged.NsPerOp, 1234567890) {
		t.Errorf("re-measured entry not overwritten: %+v", merged)
	}
	if _, ok := byKey["tecopt/internal/core\x00BenchmarkEngine_Old"]; !ok {
		t.Error("untouched snapshot entry dropped by merge")
	}
	for i := 1; i < len(results); i++ {
		a, b := results[i-1], results[i]
		if a.Package > b.Package || (a.Package == b.Package && a.Name > b.Name) {
			t.Fatalf("merged output not sorted at %d: %+v", i, results)
		}
	}
}

// Gate semantics: within tolerance passes, beyond it fails, and new
// benchmarks missing from the snapshot never fail the gate.
func TestGateTolerance(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkEngine_TableI", Package: "tecopt/internal/bench", NsPerOp: 1234567890},
		{Name: "BenchmarkEngine_HklSweep", Package: "tecopt/internal/core", NsPerOp: 98765432},
	}
	var out bytes.Buffer
	if err := gate(strings.NewReader(sampleStream), &out, base, 0.20); err != nil {
		t.Fatalf("identical timings failed the gate: %v\n%s", err, out.String())
	}

	// Shrink the snapshot so the measured TableI is a >20% regression.
	base[0].NsPerOp = 1234567890 / 1.5
	out.Reset()
	err := gate(strings.NewReader(sampleStream), &out, base, 0.20)
	if err == nil {
		t.Fatalf("50%% regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("gate report missing FAIL line:\n%s", out.String())
	}
	// A generous tolerance admits the same measurement.
	out.Reset()
	if err := gate(strings.NewReader(sampleStream), &out, base, 0.60); err != nil {
		t.Fatalf("regression within widened tolerance failed: %v", err)
	}

	// Unknown benchmarks are reported as NEW, not failed.
	out.Reset()
	if err := gate(strings.NewReader(sampleStream), &out, base[:1], 0.60); err != nil {
		t.Fatalf("benchmark absent from snapshot failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "NEW") {
		t.Fatalf("gate report missing NEW line:\n%s", out.String())
	}
}
