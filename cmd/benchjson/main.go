// Command benchjson converts the event stream of `go test -bench -json`
// into a compact, diffable benchmark snapshot. It reads test2json
// events on stdin, extracts the benchmark result lines, and writes a
// sorted JSON array to stdout:
//
//	go test -run '^$' -bench 'BenchmarkEngine_(TableI|HklSweep)$' \
//	    -benchmem -benchtime=1x -json ./internal/bench ./internal/core \
//	    | go run ./cmd/benchjson > BENCH_solver.json
//
// Each entry carries the benchmark name (with the -N GOMAXPROCS suffix
// stripped), the package, iteration count, ns/op, and — when -benchmem
// is on — B/op and allocs/op. `make bench-json` is the canonical
// invocation; EXPERIMENTS.md tracks the committed snapshots.
//
// Two flags extend the converter into snapshot maintenance and CI
// gating:
//
//	-merge FILE   start from the snapshot in FILE: re-measured entries
//	              overwrite their previous values, entries the current
//	              run did not touch are kept, so one targeted bench run
//	              updates the snapshot without losing the trajectory of
//	              the others.
//	-gate FILE    compare the incoming results against the snapshot in
//	              FILE instead of emitting JSON: any benchmark slower
//	              than its snapshot ns/op by more than -tol (default
//	              0.20, i.e. 20%) fails the gate with exit status 1.
//	              Benchmarks missing from the snapshot are reported but
//	              do not fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"tecopt/internal/obs"
)

// event is the subset of the test2json schema benchjson needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// Result is one benchmark measurement in the snapshot.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	mergeFile := flag.String("merge", "", "merge results into the snapshot at this path (kept entries + re-measured overwrites)")
	gateFile := flag.String("gate", "", "gate results against the snapshot at this path instead of emitting JSON")
	tol := flag.Float64("tol", 0.20, "relative ns/op regression tolerance for -gate")
	logFlags := obs.BindLogFlags(flag.CommandLine)
	flag.Parse()
	restoreLog, err := logFlags.Install(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	defer restoreLog()
	if err := runMode(os.Stdin, os.Stdout, *mergeFile, *gateFile, *tol); err != nil {
		if l := obs.Logger(); l != nil {
			l.Error("benchjson failed", "err", err.Error())
		}
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runMode dispatches on the flag set: plain conversion, snapshot merge,
// or regression gate.
func runMode(in io.Reader, out io.Writer, mergeFile, gateFile string, tol float64) error {
	switch {
	case mergeFile != "" && gateFile != "":
		return fmt.Errorf("-merge and -gate are mutually exclusive")
	case gateFile != "":
		base, err := readSnapshot(gateFile)
		if err != nil {
			return err
		}
		return gate(in, out, base, tol)
	case mergeFile != "":
		base, err := readSnapshot(mergeFile)
		if err != nil {
			return err
		}
		return run(in, out, base)
	default:
		return run(in, out, nil)
	}
}

// readSnapshot loads a committed BENCH_*.json array.
func readSnapshot(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", path, err)
	}
	return results, nil
}

// key identifies a benchmark across runs.
func key(r Result) string { return r.Package + "\x00" + r.Name }

func run(in io.Reader, out io.Writer, base []Result) error {
	results, err := parseStream(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results in input (did the bench run fail?)")
	}
	if len(base) > 0 {
		measured := make(map[string]bool, len(results))
		for _, r := range results {
			measured[key(r)] = true
		}
		for _, b := range base {
			if !measured[key(b)] {
				results = append(results, b)
			}
		}
		sort.Slice(results, func(i, j int) bool {
			if results[i].Package != results[j].Package {
				return results[i].Package < results[j].Package
			}
			return results[i].Name < results[j].Name
		})
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", data)
	return err
}

// gate compares incoming results against the snapshot and fails on any
// ns/op regression beyond tol relative.
func gate(in io.Reader, out io.Writer, base []Result, tol float64) error {
	results, err := parseStream(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results in input (did the bench run fail?)")
	}
	snap := make(map[string]Result, len(base))
	for _, b := range base {
		snap[key(b)] = b
	}
	var failures int
	for _, r := range results {
		b, ok := snap[key(r)]
		if !ok {
			fmt.Fprintf(out, "NEW   %-45s %14.0f ns/op (not in snapshot)\n", r.Name, r.NsPerOp)
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		status := "OK   "
		if r.NsPerOp > b.NsPerOp*(1+tol) {
			status = "FAIL "
			failures++
		}
		fmt.Fprintf(out, "%s %-45s %14.0f ns/op vs %14.0f snapshot (%+.1f%%)\n",
			status, r.Name, r.NsPerOp, b.NsPerOp, 100*(ratio-1))
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% against the snapshot", failures, 100*tol)
	}
	return nil
}

// parseStream decodes test2json events and collects benchmark result
// lines, sorted by (package, name) so snapshots diff cleanly.
//
// test2json splits one textual benchmark result across multiple
// output events (the name flushes with a trailing tab before the
// measurements arrive), so events are reassembled into lines per
// package before parsing.
func parseStream(in io.Reader) ([]Result, error) {
	var results []Result
	partial := make(map[string]string) // package -> unterminated output
	emit := func(pkg, text string) {
		if r, ok := parseBenchLine(strings.TrimSpace(text), pkg); ok {
			results = append(results, r)
		}
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate non-JSON noise (e.g. a bare `go test` line when
			// the stream was produced without -json by mistake).
			emit("", line)
			continue
		}
		if ev.Action != "output" {
			continue
		}
		buf := partial[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			emit(ev.Package, buf[:nl])
			buf = buf[nl+1:]
		}
		partial[ev.Package] = buf
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for pkg, rest := range partial {
		emit(pkg, rest)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Package != results[j].Package {
			return results[i].Package < results[j].Package
		}
		return results[i].Name < results[j].Name
	})
	return results, nil
}

// parseBenchLine parses one `BenchmarkName-N  iters  ns/op [B/op allocs/op]`
// result line. Non-benchmark output returns ok=false.
func parseBenchLine(line, pkg string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") || !strings.Contains(line, "ns/op") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       strings.TrimSuffix(fields[0], "-"+gomaxprocsSuffix(fields[0])),
		Package:    pkg,
		Iterations: iters,
	}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			ns, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, false
			}
			r.NsPerOp = ns
			sawNs = true
		case "B/op":
			b, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Result{}, false
			}
			r.BytesPerOp = b
		case "allocs/op":
			a, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Result{}, false
			}
			r.AllocsPerOp = a
		}
	}
	if !sawNs {
		return Result{}, false
	}
	return r, true
}

// gomaxprocsSuffix returns the trailing "-N" procs suffix of a
// benchmark name (without the dash), or "" when absent.
func gomaxprocsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	suffix := name[i+1:]
	if _, err := strconv.Atoi(suffix); err != nil {
		return ""
	}
	return suffix
}
