// Command mkchip exports a built-in benchmark chip as a HotSpot-format
// floorplan (.flp) plus a power trace (.ptrace), so the file-driven
// tecopt/thermalsim paths can round-trip the bundled experiments and
// users have templates for their own chips.
//
// Usage:
//
//	mkchip [-chip alpha|hcNN|hc:<seed>] [-out chip]
//
// writes chip.flp and chip.ptrace. For the Alpha chip the trace holds
// one sample per synthetic SPEC2000-like workload; for HC chips it holds
// a single worst-case sample (the generator defines no workloads), so
// load it back with -margin 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"tecopt/internal/chipload"
	"tecopt/internal/floorplan"
	"tecopt/internal/obs"
	"tecopt/internal/power"
	"tecopt/internal/tecerr"
)

func main() {
	chip := flag.String("chip", "alpha", "chip to export: alpha, hc01..hc10, or hc:<seed>")
	out := flag.String("out", "chip", "output basename (writes <out>.flp and <out>.ptrace)")
	logFlags := obs.BindLogFlags(flag.CommandLine)
	flag.Parse()
	restoreLog, err := logFlags.Install(os.Stderr)
	if err != nil {
		fatal(err)
	}
	defer restoreLog()

	loaded, err := chipload.Load(chipload.Spec{Name: *chip})
	if err != nil {
		fatal(err)
	}

	flpPath := *out + ".flp"
	ff, err := os.Create(flpPath)
	if err != nil {
		fatal(err)
	}
	if err := floorplan.WriteFLP(ff, loaded.Floorplan); err != nil {
		fatal(err)
	}
	if err := ff.Close(); err != nil {
		fatal(err)
	}

	var tr *power.Trace
	if *chip == "alpha" || *chip == "" {
		// Full synthetic workload trace; envelope*1.2 = worst case.
		tr = power.SynthesizeTrace(power.NewAlphaModel(), loaded.Floorplan, power.SyntheticSPECWorkloads())
	} else {
		// HC chips define worst-case powers directly: one sample, and
		// the consumer should use -margin 1.
		row := make([]float64, len(loaded.Floorplan.Units))
		perUnit := map[string]float64{}
		for t, p := range loaded.TilePower {
			owner := loaded.Grid.OwnerUnit[t]
			perUnit[loaded.Floorplan.Units[owner].Name] += p
		}
		for i, u := range loaded.Floorplan.Units {
			row[i] = perUnit[u.Name]
		}
		tr = &power.Trace{Units: loaded.Floorplan.UnitNames(), Samples: [][]float64{row}}
	}
	ptPath := *out + ".ptrace"
	pf, err := os.Create(ptPath)
	if err != nil {
		fatal(err)
	}
	if err := power.WritePtrace(pf, tr); err != nil {
		fatal(err)
	}
	if err := pf.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d units) and %s (%d samples)\n",
		flpPath, len(loaded.Floorplan.Units), ptPath, len(tr.Samples))
}

// fatal reports the error and exits with its tecerr taxonomy status.
// With -log on, the error also goes to the structured log with its
// tecerr code attached.
func fatal(err error) {
	if l := obs.Logger(); l != nil {
		l.Error("mkchip failed", tecerr.LogAttrs(err)...)
	}
	fmt.Fprintln(os.Stderr, "mkchip:", err)
	os.Exit(tecerr.ExitCode(err))
}
