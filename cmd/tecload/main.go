// Command tecload is the open-loop load generator for tecserve: it
// fires requests at a fixed arrival rate (not waiting for responses —
// open loop, so server slowdown cannot hide in a closed feedback
// loop), measures per-request latency, and reports p50/p90/p99 plus
// throughput and a per-status breakdown.
//
// Usage:
//
//	tecload [-url http://host:port] [-endpoint solve|optimize-current|
//	        runaway-limit|sweep] [-chip alpha] [-sites 66,77]
//	        [-current 0.5] [-rate 50] [-duration 5s] [-deadline-ms N]
//	        [-self] [-self-workers N] [-self-queue N]
//
// With -self (or no -url) it serves an in-process tecserve instance
// and drives that — the hermetic mode `make bench-serve` uses.
//
// The summary ends with bare benchmark result lines
// (BenchmarkServe_<endpoint>_p50 ... ns/op) that cmd/benchjson parses,
// so serving latency joins the repo's benchmark snapshot flow:
//
//	tecload -self -rate 100 -duration 5s | benchjson -merge BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tecopt/internal/serve"
	"tecopt/internal/tecerr"
)

func main() {
	os.Exit(run())
}

func run() int {
	url := flag.String("url", "", "target tecserve base URL (empty: serve in-process, implies -self)")
	self := flag.Bool("self", false, "serve an in-process tecserve instance and load it")
	selfWorkers := flag.Int("self-workers", 4, "in-process server worker slots")
	selfQueue := flag.Int("self-queue", 64, "in-process server queue depth")
	endpoint := flag.String("endpoint", "solve", "endpoint to drive: solve, optimize-current, runaway-limit or sweep")
	chip := flag.String("chip", "alpha", "chip for the request bodies: alpha, hc01..hc10, hc:<seed>")
	sites := flag.String("sites", "66", "comma-separated TEC site tiles")
	current := flag.Float64("current", 0.5, "supply current for solve bodies (A)")
	sweepCurrents := flag.String("sweep-currents", "0.1,0.2,0.3,0.4", "comma-separated currents for sweep bodies (A)")
	rate := flag.Float64("rate", 50, "open-loop arrival rate (requests/second)")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-request deadline_ms (0: server default)")
	flag.Parse()
	if flag.NArg() > 0 {
		return fail(tecerr.Newf(tecerr.CodeInvalidInput, "tecload",
			"tecload: unexpected arguments %q", flag.Args()))
	}
	if *rate <= 0 || *duration <= 0 {
		return fail(tecerr.New(tecerr.CodeInvalidInput, "tecload", "tecload: -rate and -duration must be positive"))
	}

	siteList, err := parseIntList(*sites)
	if err != nil {
		return fail(err)
	}
	currents, err := parseFloatList(*sweepCurrents)
	if err != nil {
		return fail(err)
	}
	body, path, err := buildRequest(*endpoint, *chip, siteList, *current, currents, *deadlineMS)
	if err != nil {
		return fail(err)
	}

	base := *url
	if base == "" || *self {
		srv := serve.New(serve.Options{Workers: *selfWorkers, Queue: *selfQueue})
		ln, err := net.Listen("tcp", "localhost:0")
		if err != nil {
			return fail(tecerr.Wrapf(tecerr.CodeUnavailable, "tecload", err, "tecload: self listen"))
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "tecload: self-serving on %s (%d workers, queue %d)\n",
			base, *selfWorkers, *selfQueue)
	}

	fmt.Fprintf(os.Stderr, "tecload: %s %s at %.0f req/s for %s\n", path, base, *rate, *duration)
	stats := runLoad(base+path, body, *rate, *duration)
	if stats.completed == 0 {
		return fail(tecerr.New(tecerr.CodeUnavailable, "tecload", "tecload: no request completed"))
	}
	stats.report(os.Stdout, benchName(*endpoint))
	if stats.ok == 0 {
		return fail(tecerr.New(tecerr.CodeDegraded, "tecload", "tecload: no request succeeded"))
	}
	return 0
}

// result is one completed request.
type result struct {
	status  int
	latency time.Duration
}

// stats aggregates a load run.
type stats struct {
	sent      int
	completed int
	ok        int
	byStatus  map[int]int
	okLatency []time.Duration // latencies of 2xx responses, sorted by report
	elapsed   time.Duration
}

// runLoad fires POST bodies at url on an open-loop schedule: one
// request every 1/rate seconds for the given duration, each on its own
// goroutine, never gated on earlier responses.
func runLoad(url string, body []byte, rate float64, duration time.Duration) *stats {
	interval := time.Duration(float64(time.Second) / rate)
	client := &http.Client{}
	results := make(chan result, 16384)
	var wg sync.WaitGroup

	start := time.Now()
	sent := 0
	ticker := time.NewTicker(interval)
	for time.Since(start) < duration {
		<-ticker.C
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			lat := time.Since(t0)
			if err != nil {
				results <- result{status: 0, latency: lat}
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- result{status: resp.StatusCode, latency: lat}
		}()
	}
	ticker.Stop()
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	s := &stats{sent: sent, byStatus: map[int]int{}, elapsed: elapsed}
	for r := range results {
		s.completed++
		s.byStatus[r.status]++
		if r.status >= 200 && r.status < 300 {
			s.ok++
			s.okLatency = append(s.okLatency, r.latency)
		}
	}
	return s
}

// report prints the human summary followed by the benchjson-parsable
// result lines.
func (s *stats) report(w io.Writer, bench string) {
	sort.Slice(s.okLatency, func(i, j int) bool { return s.okLatency[i] < s.okLatency[j] })
	fmt.Fprintf(w, "requests    %d sent, %d completed, %d ok\n", s.sent, s.completed, s.ok)
	statuses := make([]int, 0, len(s.byStatus))
	for st := range s.byStatus {
		statuses = append(statuses, st)
	}
	sort.Ints(statuses)
	for _, st := range statuses {
		label := strconv.Itoa(st)
		if st == 0 {
			label = "transport-error"
		}
		fmt.Fprintf(w, "  status %-15s %d\n", label, s.byStatus[st])
	}
	throughput := float64(s.completed) / s.elapsed.Seconds()
	fmt.Fprintf(w, "throughput  %.1f req/s over %s\n", throughput, s.elapsed.Round(time.Millisecond))
	if s.ok == 0 {
		return
	}
	p50 := s.percentile(0.50)
	p90 := s.percentile(0.90)
	p99 := s.percentile(0.99)
	fmt.Fprintf(w, "latency     p50 %s  p90 %s  p99 %s  max %s\n",
		p50.Round(time.Microsecond), p90.Round(time.Microsecond),
		p99.Round(time.Microsecond), s.okLatency[len(s.okLatency)-1].Round(time.Microsecond))
	// Bare benchmark lines in testing-package format; cmd/benchjson
	// parses these into BENCH_serve.json via -merge.
	fmt.Fprintf(w, "Benchmark%s_p50 %d %d ns/op\n", bench, s.ok, p50.Nanoseconds())
	fmt.Fprintf(w, "Benchmark%s_p99 %d %d ns/op\n", bench, s.ok, p99.Nanoseconds())
	fmt.Fprintf(w, "Benchmark%s_rps %d %d ns/op\n", bench, s.completed, int64(float64(time.Second)/throughput))
}

// percentile returns the q-quantile of the sorted ok latencies
// (nearest-rank).
func (s *stats) percentile(q float64) time.Duration {
	if len(s.okLatency) == 0 {
		return 0
	}
	i := int(q*float64(len(s.okLatency))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s.okLatency) {
		i = len(s.okLatency) - 1
	}
	return s.okLatency[i]
}

// benchName maps an endpoint to its benchmark identifier
// (BenchmarkServe_<name>).
func benchName(endpoint string) string {
	return "Serve_" + strings.ReplaceAll(endpoint, "-", "_")
}

// buildRequest assembles the JSON body and URL path for one endpoint.
func buildRequest(endpoint, chip string, sites []int, current float64, sweepCurrents []float64, deadlineMS int64) ([]byte, string, error) {
	body := map[string]any{
		"chip":  map[string]any{"name": chip},
		"sites": sites,
	}
	if deadlineMS > 0 {
		body["deadline_ms"] = deadlineMS
	}
	var path string
	switch endpoint {
	case "solve":
		path = "/v1/solve"
		body["current_a"] = current
	case "optimize-current":
		path = "/v1/optimize-current"
	case "runaway-limit":
		path = "/v1/runaway-limit"
	case "sweep":
		path = "/v1/sweep"
		if len(sites) > 0 {
			body["k"], body["l"] = sites[0], sites[0]
		}
		body["currents_a"] = sweepCurrents
	default:
		return nil, "", tecerr.Newf(tecerr.CodeInvalidInput, "tecload",
			"tecload: unknown endpoint %q (want solve, optimize-current, runaway-limit or sweep)", endpoint)
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, "", tecerr.Wrapf(tecerr.CodeInternal, "tecload", err, "tecload: marshaling body")
	}
	return raw, path, nil
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "tecload", "tecload: bad integer %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "tecload", "tecload: bad number %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return tecerr.ExitCode(err)
}
