package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tecopt/internal/serve"
)

func TestPercentiles(t *testing.T) {
	s := &stats{}
	for i := 1; i <= 100; i++ {
		s.okLatency = append(s.okLatency, time.Duration(i)*time.Millisecond)
	}
	s.ok = 100
	if got := s.percentile(0.50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := s.percentile(0.99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", got)
	}
	if got := s.percentile(1.0); got != 100*time.Millisecond {
		t.Errorf("p100 = %v, want 100ms", got)
	}
}

func TestBuildRequest(t *testing.T) {
	body, path, err := buildRequest("solve", "alpha", []int{66}, 0.5, nil, 250)
	if err != nil || path != "/v1/solve" {
		t.Fatalf("buildRequest solve = %q, %v", path, err)
	}
	for _, want := range []string{`"current_a":0.5`, `"deadline_ms":250`, `"name":"alpha"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("solve body %s missing %s", body, want)
		}
	}
	if _, _, err := buildRequest("teleport", "alpha", nil, 0, nil, 0); err == nil {
		t.Error("unknown endpoint accepted")
	}
}

// TestRunLoadAgainstServer drives a real in-process serve.Server at a
// modest open-loop rate and checks the stats plus the benchjson-format
// output lines.
func TestRunLoadAgainstServer(t *testing.T) {
	srv := serve.New(serve.Options{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := []byte(`{"chip":{"cols":4,"rows":4,"spreader_cells":5,"sink_cells":5,"tile_power_w":[0.15,0.15,0.15,0.15,0.15,1.2,0.15,0.15,0.15,0.15,0.15,0.15,0.15,0.15,0.15,0.15]},"sites":[5],"current_a":0.4}`)

	s := runLoad(ts.URL+"/v1/solve", body, 40, 500*time.Millisecond)
	if s.sent < 10 {
		t.Fatalf("sent = %d, want >= 10 at 40 req/s over 500ms", s.sent)
	}
	if s.completed != s.sent {
		t.Errorf("completed = %d, sent = %d — open loop must account for every request", s.completed, s.sent)
	}
	if s.ok == 0 {
		t.Fatalf("no successful request: statuses %v", s.byStatus)
	}

	var out bytes.Buffer
	s.report(&out, benchName("solve"))
	text := out.String()
	for _, want := range []string{"BenchmarkServe_solve_p50 ", "BenchmarkServe_solve_p99 ", "ns/op", "throughput"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}
