// Command tecserve is the fault-tolerant thermal-solve service: the
// core solver library behind an HTTP+JSON API with admission control,
// backpressure, per-request deadlines, panic isolation, and graceful
// drain. See internal/serve for the pipeline and DESIGN.md §14 for the
// architecture and the status-code contract.
//
// Endpoints (all POST, JSON bodies):
//
//	/v1/solve             steady-state field at one supply current
//	/v1/optimize-current  optimal shared supply current (Section V.C)
//	/v1/runaway-limit     thermal-runaway current lambda_m (Theorem 2)
//	/v1/sweep             h_kl over a current sweep (Figure 6); partial
//	                      results are flushed on deadline expiry
//	/healthz              200 serving, 503 draining (GET)
//	/metrics              metric snapshot (GET)
//	/debug/pprof/*        pprof handlers
//
// Usage:
//
//	tecserve [-addr localhost:8080] [-workers N] [-queue N]
//	         [-default-deadline 30s] [-max-deadline 2m]
//	         [-sweep-workers N] [-drain-timeout 10s]
//	         [-faults SPEC]
//	         [observability flags: -metrics, -trace FILE, -log json, ...]
//
// SIGTERM or SIGINT starts a graceful drain: the server immediately
// answers 503 to new requests, finishes in-flight ones up to
// -drain-timeout, then exits — 0 after a clean drain, the cancelled
// status code when the deadline forced it.
//
// -faults arms deterministic service-layer chaos (see faults.ParseSpec
// for the grammar), e.g.:
//
//	tecserve -faults 'seed=7;panic@serve.handle:every=10;sleep@serve.handle:prob=0.2,ms=50'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tecopt/internal/faults"
	"tecopt/internal/obs"
	"tecopt/internal/serve"
	"tecopt/internal/tecerr"
)

func main() {
	os.Exit(run())
}

// run is main's body; returning (instead of os.Exit inline) lets the
// deferred obs session flush its snapshot and trace on every path.
func run() int {
	addr := flag.String("addr", "localhost:8080", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("workers", 0, "max concurrently executing requests (0 = default 4)")
	queue := flag.Int("queue", 64, "admission queue depth beyond the workers; 0 = no waiting room, shed immediately")
	defaultDeadline := flag.Duration("default-deadline", 30*time.Second, "per-request deadline when the request sets none")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "cap on any requested deadline_ms")
	sweepWorkers := flag.Int("sweep-workers", 1, "parallel workers per sweep request")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on SIGTERM before forcing exit")
	faultsSpec := flag.String("faults", "", "arm deterministic chaos faults (kind@site:params;... — see internal/faults)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		return fatal(tecerr.Newf(tecerr.CodeInvalidInput, "tecserve",
			"tecserve: unexpected arguments %q", flag.Args()))
	}

	session, err := obsFlags.Start()
	if err != nil {
		return fatal(err)
	}
	defer func() {
		if err := session.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tecserve: obs shutdown: %v\n", err)
		}
	}()
	// A service always has a live registry — /metrics must answer even
	// when no observability flag was given. The flag bundle's registry
	// wins when present (it carries the trace/log configuration).
	reg := obs.Enabled()
	if reg == nil {
		reg = obs.New(nil)
		obs.SetGlobal(reg)
		defer obs.SetGlobal(nil)
	}

	if *faultsSpec != "" {
		in, err := faults.ParseSpec(*faultsSpec)
		if err != nil {
			return fatal(err)
		}
		faults.Install(in)
		fmt.Fprintf(os.Stderr, "tecserve: CHAOS MODE — fault injection armed: %s\n", *faultsSpec)
	}

	srv := serve.New(serve.Options{
		Workers:         *workers,
		Queue:           cliQueue(*queue),
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		SweepWorkers:    *sweepWorkers,
	})
	obs.RegisterSnapshotHook(srv.PublishStats)

	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())
	mux.Handle("/healthz", srv.Handler())
	mux.Handle("/metrics", obs.Handler(reg))
	mux.Handle("/debug/", obs.DebugMux(reg))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fatal(tecerr.Wrapf(tecerr.CodeUnavailable, "tecserve", err,
			"tecserve: listen on %s", *addr))
	}
	// The smoke tests and operators parse this line; keep it stable.
	fmt.Printf("tecserve: listening on http://%s\n", ln.Addr())

	httpServer := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "tecserve: %v — draining (timeout %s)\n", sig, *drainTimeout)
	case err := <-serveErr:
		return fatal(tecerr.Wrapf(tecerr.CodeUnavailable, "tecserve", err, "tecserve: serve"))
	}

	// Drain state machine: refuse new work (503) while in-flight
	// requests finish, bounded by -drain-timeout; only then close the
	// listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	drainErr := srv.Drain(ctx)
	cancel()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
	if err := httpServer.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "tecserve: shutdown: %v\n", err)
	}
	shutCancel()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "tecserve: serve: %v\n", err)
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "tecserve: drain forced: %v\n", drainErr)
		return tecerr.ExitCode(drainErr)
	}
	fmt.Fprintln(os.Stderr, "tecserve: drained cleanly")
	return 0
}

// cliQueue maps the flag convention (0 = no waiting room) onto the
// Options convention (negative = none, 0 = default).
func cliQueue(q int) int {
	if q == 0 {
		return -1
	}
	return q
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return tecerr.ExitCode(err)
}
