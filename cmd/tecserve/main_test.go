package main

// Binary smoke tests: build the real tecserve executable, drive every
// endpoint over real HTTP, force a 429 through a tiny admission
// configuration, and prove the SIGTERM drain finishes in-flight work
// and exits 0. make serve-smoke (and CI) runs exactly this file.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildServe compiles the tecserve binary once per test run.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tecserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// tinyBody is a 4x4 explicit-power request body shared by the smoke
// calls; extra carries endpoint-specific fields.
func tinyBody(extra map[string]any) []byte {
	p := make([]float64, 16)
	for i := range p {
		p[i] = 0.15
	}
	p[5] = 1.2
	body := map[string]any{
		"chip": map[string]any{
			"cols": 4, "rows": 4,
			"spreader_cells": 5, "sink_cells": 5,
			"tile_power_w": p,
		},
		"sites": []int{5},
	}
	for k, v := range extra {
		body[k] = v
	}
	raw, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	return raw
}

// startServe launches the binary and returns its base URL, a SIGTERM
// trigger, and a wait func reporting the exit code and stderr.
func startServe(t *testing.T, args ...string) (url string, sigterm func(), wait func() (int, string)) {
	t.Helper()
	cmd := exec.Command(buildServe(t), append([]string{"-addr", "localhost:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })

	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v (stderr: %s)", err, stderr.String())
	}
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	url = strings.TrimSpace(line[i+len(marker):])
	// Drain the rest of stdout so the child never blocks on the pipe.
	go func() { _, _ = io.Copy(io.Discard, stdout) }()

	sigterm = func() {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Errorf("SIGTERM: %v", err)
		}
	}
	wait = func() (int, string) {
		err := cmd.Wait()
		code := 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("wait: %v", err)
			}
			code = ee.ExitCode()
		}
		return code, stderr.String()
	}
	return url, sigterm, wait
}

func postStatus(t *testing.T, url string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, m
}

// TestServeBinarySmoke is the end-to-end drill: every endpoint over
// real HTTP, a forced 429 with one worker and no queue, the
// cross-request solver-cache hit visible in /metrics, and a SIGTERM
// drain that finishes the in-flight request and exits 0.
func TestServeBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test builds and runs the executable")
	}
	// The injected sleep arms hit 6 at serve.handle: requests 1-5 are
	// the fast endpoint drill, request 6 parks in the single worker
	// slot long enough to shed request 7 and to be mid-flight at
	// SIGTERM.
	url, sigterm, wait := startServe(t,
		"-workers", "1", "-queue", "0",
		"-faults", "sleep@serve.handle:onhit=6,ms=800")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	status, m := postStatus(t, url+"/v1/solve", tinyBody(map[string]any{"current_a": 0.5}))
	if status != http.StatusOK || m["peak_c"] == nil {
		t.Fatalf("solve: status %d body %v", status, m)
	}
	status, _ = postStatus(t, url+"/v1/solve", tinyBody(map[string]any{"current_a": 0.5}))
	if status != http.StatusOK {
		t.Fatalf("solve#2: status %d", status)
	}
	status, m = postStatus(t, url+"/v1/optimize-current", tinyBody(nil))
	if status != http.StatusOK || m["i_opt_a"] == nil {
		t.Fatalf("optimize-current: status %d body %v", status, m)
	}
	status, m = postStatus(t, url+"/v1/runaway-limit", tinyBody(nil))
	if status != http.StatusOK || m["has_limit"] != true {
		t.Fatalf("runaway-limit: status %d body %v", status, m)
	}
	status, m = postStatus(t, url+"/v1/sweep", tinyBody(map[string]any{
		"k": 5, "l": 5, "currents_a": []float64{0.1, 0.3},
	}))
	if status != http.StatusOK || m["done"] != float64(2) {
		t.Fatalf("sweep: status %d body %v", status, m)
	}

	// Request 6 hits the injected 800ms sleep and parks in the only
	// worker slot; it must still answer 200 — even though we SIGTERM
	// the server while it is in flight.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, m := postStatus(t, url+"/v1/solve", tinyBody(map[string]any{"current_a": 0.4}))
		if status != http.StatusOK {
			t.Errorf("in-flight request: status %d body %v, want 200 across drain", status, m)
		}
	}()
	time.Sleep(200 * time.Millisecond) // request 6 is now sleeping in the slot

	// Request 7: one worker, no waiting room — backpressure contract.
	req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(tinyBody(map[string]any{"current_a": 0.2})))
	if err != nil {
		t.Fatal(err)
	}
	shed, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	shedBody, _ := io.ReadAll(shed.Body)
	shed.Body.Close()
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full server: status %d body %s, want 429", shed.StatusCode, shedBody)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	// The cross-request reuse scoreboard: solve#2 shared solve#1's
	// system and SMW solver state, and the counters prove it on
	// /metrics.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	resp.Body.Close()
	if snap.Counters["engine.solver_cache.hits"] < 1 {
		t.Errorf("engine.solver_cache.hits = %d, want >= 1 (cross-request reuse)", snap.Counters["engine.solver_cache.hits"])
	}
	if snap.Counters["tecserve.system_cache.hits"] < 1 {
		t.Errorf("tecserve.system_cache.hits = %d, want >= 1", snap.Counters["tecserve.system_cache.hits"])
	}
	if snap.Counters["tecserve.status.429"] < 1 {
		t.Errorf("tecserve.status.429 = %d, want >= 1", snap.Counters["tecserve.status.429"])
	}

	// SIGTERM with request 6 still sleeping: drain must finish it and
	// exit 0.
	sigterm()
	wg.Wait()
	code, errOut := wait()
	if code != 0 {
		t.Fatalf("exit code %d after SIGTERM drain, want 0\nstderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "drained cleanly") {
		t.Errorf("stderr missing clean-drain line:\n%s", errOut)
	}
}

// TestServeBinaryBadFlags pins the CLI failure contract: a bad -faults
// spec exits with the invalid-input status code before listening.
func TestServeBinaryBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test builds and runs the executable")
	}
	cmd := exec.Command(buildServe(t), "-faults", "warp@nowhere")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bad -faults accepted:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v, want invalid-input code 2\n%s", err, out)
	}
}
