package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tecopt/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// fixturePatterns are the analyzer fixture packages, expressed relative
// to the module root. They deliberately seed violations, so linting them
// exercises every rule and the output formatting at once.
var fixturePatterns = []string{
	"internal/lint/testdata/badignore",
	"internal/lint/testdata/cachegen",
	"internal/lint/testdata/chanflow",
	"internal/lint/testdata/ctxflow",
	"internal/lint/testdata/dimflow",
	"internal/lint/testdata/droppederr",
	"internal/lint/testdata/errpath",
	"internal/lint/testdata/floateq",
	"internal/lint/testdata/goroleak",
	"internal/lint/testdata/lockbalance",
	"internal/lint/testdata/lockcopy",
	"internal/lint/testdata/maporder",
	"internal/lint/testdata/mutexblock",
	"internal/lint/testdata/nanflow",
	"internal/lint/testdata/obsclock",
	"internal/lint/testdata/oncemisuse",
	"internal/lint/testdata/spawnctx",
	"internal/lint/testdata/testhelper",
	"internal/lint/testdata/typederr",
	"internal/lint/testdata/unitsanity",
	"internal/lint/testdata/validatefirst",
	"internal/lint/testdata/wgbalance",
}

// runAtRoot invokes the teclint driver from the module root and returns
// (exit code, stdout, stderr).
func runAtRoot(t *testing.T, args []string) (int, string, string) {
	t.Helper()
	chdir(t, moduleRoot(t))
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// chdir changes the working directory for the duration of the test.
// (The tests here never call t.Parallel, so this is safe.)
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatalf("restoring working directory: %v", err)
		}
	})
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		t.Fatalf("module root not found from %s: %v", wd, err)
	}
	return root
}

// TestGoldenOutput pins the exact diagnostic stream produced for the
// seeded fixture packages: the `file:line: [rule] message` format, the
// sort order (file, then line), and the trailing finding count. Run
// with -update to regenerate testdata/golden.txt after intentional
// analyzer changes.
func TestGoldenOutput(t *testing.T) {
	goldenPath, err := filepath.Abs(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runAtRoot(t, fixturePatterns)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixtures seed violations); stderr:\n%s", code, stderr)
	}
	if want := "finding(s)"; !strings.Contains(stderr, want) {
		t.Errorf("stderr %q does not report the finding count", stderr)
	}

	if *update {
		if err := os.WriteFile(goldenPath, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (run `go test ./cmd/teclint -run TestGoldenOutput -update` to create): %v", err)
	}
	if stdout != string(golden) {
		t.Errorf("output differs from golden file\n--- got ---\n%s--- want ---\n%s", stdout, golden)
	}
}

// TestOutputDeterministic runs the driver twice over the same inputs and
// demands byte-identical output: map iteration or goroutine scheduling
// must never leak into the diagnostic stream.
func TestOutputDeterministic(t *testing.T) {
	_, first, _ := runAtRoot(t, fixturePatterns)
	_, second, _ := runAtRoot(t, fixturePatterns)
	if first != second {
		t.Errorf("two runs differ\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestOutputSorted verifies the documented ordering contract directly:
// findings are grouped by file and nondecreasing by line within a file.
func TestOutputSorted(t *testing.T) {
	_, stdout, _ := runAtRoot(t, fixturePatterns)
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected multiple findings, got %d line(s)", len(lines))
	}
	type pos struct {
		file string
		line string
	}
	var prev pos
	for i, ln := range lines {
		parts := strings.SplitN(ln, ":", 3)
		if len(parts) != 3 || !strings.Contains(parts[2], "[") {
			t.Fatalf("line %d not in file:line: [rule] message form: %q", i+1, ln)
		}
		cur := pos{parts[0], parts[1]}
		if i > 0 && cur.file == prev.file && len(cur.line) == len(prev.line) && cur.line < prev.line {
			t.Errorf("line %d out of order: %q after %q", i+1, ln, lines[i-1])
		}
		prev = cur
	}
}

// TestRepoLintsClean is the self-hosting gate: the production tree must
// produce zero diagnostics under its own analyzers.
func TestRepoLintsClean(t *testing.T) {
	code, stdout, stderr := runAtRoot(t, []string{"./..."})
	if code != 0 || stdout != "" {
		t.Fatalf("repository is not lint-clean (exit %d):\n%s%s", code, stdout, stderr)
	}
}

// lintWallBudget caps the whole-module serial sweep at twice the
// 16-analyzer snapshot recorded in EXPERIMENTS.md (8.39 s on the
// single-CPU reference container). The five concurrency analyzers and
// their summary harvest ride the same CFG/dataflow machinery, so the
// suite must not double the gate's cost; a regression here means an
// analyzer went super-linear, not that the machine is slow — the
// budget already assumes the slowest container measured.
const lintWallBudget = 2 * 8390 * time.Millisecond // 2 x 8.39 s

// TestLintWallTimeBudget times the full-repo serial sweep and fails if
// it blows the 2x budget over the 16-analyzer snapshot.
func TestLintWallTimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	start := time.Now()
	code, stdout, stderr := runAtRoot(t, []string{"-parallel", "1", "./..."})
	elapsed := time.Since(start)
	if code != 0 {
		t.Fatalf("repo sweep failed (exit %d):\n%s%s", code, stdout, stderr)
	}
	if elapsed > lintWallBudget {
		t.Errorf("serial whole-module lint took %v, budget %v (2x the 16-analyzer snapshot)", elapsed.Round(time.Millisecond), lintWallBudget)
	}
	t.Logf("serial whole-module lint: %v (budget %v)", elapsed.Round(time.Millisecond), lintWallBudget)
}

// TestJSONGolden pins the -json stream for the fixture packages: a
// sorted, indented array in the documented Finding shape. Run with
// -update to regenerate testdata/golden.json.
func TestJSONGolden(t *testing.T) {
	goldenPath, err := filepath.Abs(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runAtRoot(t, append([]string{"-json"}, fixturePatterns...))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr)
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (run with -update to create): %v", err)
	}
	if stdout != string(golden) {
		t.Errorf("-json output differs from golden file\n--- got ---\n%s--- want ---\n%s", stdout, golden)
	}
}

// TestSARIFGolden pins the -format=sarif stream byte-for-byte: the
// SARIF 2.1.0 envelope, the rule catalog, and one result per finding
// in the same order as the text output. Run with -update to regenerate
// testdata/golden.sarif.
func TestSARIFGolden(t *testing.T) {
	goldenPath, err := filepath.Abs(filepath.Join("testdata", "golden.sarif"))
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runAtRoot(t, append([]string{"-format", "sarif"}, fixturePatterns...))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr)
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (run with -update to create): %v", err)
	}
	if stdout != string(golden) {
		t.Errorf("-format=sarif output differs from golden file\n--- got ---\n%s--- want ---\n%s", stdout, golden)
	}
}

// TestSARIFShape decodes the SARIF stream and checks the envelope
// invariants: version 2.1.0, every result's ruleId resolves through
// ruleIndex into the rule catalog, locations carry slash-separated
// relative URIs, and the result count matches the text output.
func TestSARIFShape(t *testing.T) {
	_, sarifOut, _ := runAtRoot(t, append([]string{"-format", "sarif"}, fixturePatterns...))
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(sarifOut), &log); err != nil {
		t.Fatalf("-format=sarif output does not decode: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "teclint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	for _, a := range lint.All() {
		found := false
		for _, r := range run.Tool.Driver.Rules {
			if r.ID == a.Name {
				found = true
			}
		}
		if !found {
			t.Errorf("rule catalog missing analyzer %s", a.Name)
		}
	}
	_, textOut, _ := runAtRoot(t, fixturePatterns)
	textLines := strings.Split(strings.TrimRight(textOut, "\n"), "\n")
	if len(run.Results) != len(textLines) {
		t.Fatalf("SARIF has %d results, text has %d findings", len(run.Results), len(textLines))
	}
	for i, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) || run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %d: ruleIndex %d does not resolve to %q", i, r.RuleIndex, r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Errorf("result %d: %d locations", i, len(r.Locations))
			continue
		}
		loc := r.Locations[0].PhysicalLocation
		if strings.Contains(loc.ArtifactLocation.URI, "\\") || filepath.IsAbs(loc.ArtifactLocation.URI) {
			t.Errorf("result %d: URI %q is not a relative slash path", i, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("result %d: startLine %d", i, loc.Region.StartLine)
		}
		want := fmt.Sprintf("%s:%d: [%s] %s", loc.ArtifactLocation.URI, loc.Region.StartLine, r.RuleID, r.Message.Text)
		if textLines[i] != want {
			t.Errorf("result %d: text %q, SARIF renders %q", i, textLines[i], want)
		}
	}
}

// TestJSONRoundTrip decodes the -json stream with encoding/json and
// checks it carries the same findings, in the same order, as the text
// output.
func TestJSONRoundTrip(t *testing.T) {
	_, jsonOut, _ := runAtRoot(t, append([]string{"-json"}, fixturePatterns...))
	var findings []Finding
	if err := json.Unmarshal([]byte(jsonOut), &findings); err != nil {
		t.Fatalf("-json output does not round-trip: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded; fixtures seed violations")
	}
	_, textOut, _ := runAtRoot(t, fixturePatterns)
	textLines := strings.Split(strings.TrimRight(textOut, "\n"), "\n")
	if len(findings) != len(textLines) {
		t.Fatalf("JSON has %d findings, text has %d lines", len(findings), len(textLines))
	}
	for i, f := range findings {
		want := fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Message)
		if textLines[i] != want {
			t.Errorf("finding %d: text %q, JSON renders %q", i, textLines[i], want)
		}
		if f.Line <= 0 || f.Col <= 0 || f.Rule == "" || f.Message == "" {
			t.Errorf("finding %d has missing fields: %+v", i, f)
		}
	}
	// A second run must be byte-stable.
	_, again, _ := runAtRoot(t, append([]string{"-json"}, fixturePatterns...))
	if jsonOut != again {
		t.Error("-json output is not stable across runs")
	}
}

// TestParallelMatchesSerial demands byte-identical output whatever the
// worker count: index-ordered collection plus the global sort must hide
// goroutine scheduling completely.
func TestParallelMatchesSerial(t *testing.T) {
	_, serial, _ := runAtRoot(t, append([]string{"-parallel", "1"}, fixturePatterns...))
	for _, workers := range []string{"2", "8", "0"} {
		_, parallel, _ := runAtRoot(t, append([]string{"-parallel", workers}, fixturePatterns...))
		if parallel != serial {
			t.Errorf("-parallel=%s output differs from serial\n--- parallel ---\n%s--- serial ---\n%s", workers, parallel, serial)
		}
	}
}

// TestBaselineSuppression records the current findings as a baseline
// and reruns against it: everything suppressed, exit 0. A partial
// baseline must leave the rest standing.
func TestBaselineSuppression(t *testing.T) {
	_, jsonOut, _ := runAtRoot(t, append([]string{"-json"}, fixturePatterns...))
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(baseline, []byte(jsonOut), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runAtRoot(t, append([]string{"-baseline", baseline}, fixturePatterns...))
	if code != 0 || stdout != "" {
		t.Fatalf("full baseline: exit %d, output:\n%s%s", code, stdout, stderr)
	}

	var findings []Finding
	if err := json.Unmarshal([]byte(jsonOut), &findings); err != nil {
		t.Fatal(err)
	}
	partial, err := json.Marshal(findings[:len(findings)/2])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, partial, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runAtRoot(t, append([]string{"-baseline", baseline}, fixturePatterns...))
	if code != 1 {
		t.Fatalf("partial baseline: exit %d, want 1", code)
	}
	got := len(strings.Split(strings.TrimRight(stdout, "\n"), "\n"))
	want := len(findings) - len(findings)/2
	if got != want {
		t.Errorf("partial baseline left %d findings, want %d", got, want)
	}

	// An empty baseline (the checked-in CI artifact) suppresses nothing.
	if err := os.WriteFile(baseline, []byte("[]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runAtRoot(t, append([]string{"-baseline", baseline}, fixturePatterns...))
	if code != 1 || stdout == "" {
		t.Fatalf("empty baseline: exit %d, want 1 with findings", code)
	}

	// A malformed baseline is a usage failure, not a lint result.
	if err := os.WriteFile(baseline, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runAtRoot(t, append([]string{"-baseline", baseline}, fixturePatterns...))
	if code != 2 {
		t.Fatalf("malformed baseline: exit %d, want 2; stderr:\n%s", code, stderr)
	}
}

// TestExitCodeContract pins the three-way exit contract: clean tree 0,
// findings 1, load/type-check failure 2 (tecerr.CodeInvalidInput).
func TestExitCodeContract(t *testing.T) {
	if code, _, stderr := runAtRoot(t, []string{"internal/tecerr"}); code != 0 {
		t.Errorf("clean package: exit %d, want 0; stderr:\n%s", code, stderr)
	}
	if code, _, _ := runAtRoot(t, fixturePatterns[:1]); code != 1 {
		t.Errorf("fixture package: exit code != 1")
	}
	code, stdout, stderr := runAtRoot(t, []string{"cmd/teclint/testdata/broken"})
	if code != 2 {
		t.Errorf("broken package: exit %d, want 2; stderr:\n%s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("broken package wrote findings:\n%s", stdout)
	}
	if !strings.Contains(stderr, "broken") {
		t.Errorf("stderr does not mention the failing package:\n%s", stderr)
	}
}

// TestStatsFlag checks the per-analyzer accounting: text mode keeps
// stdout byte-identical and prints the table on stderr; -json mode
// wraps findings and stats in one object with a row for every
// registered analyzer.
func TestStatsFlag(t *testing.T) {
	_, plain, _ := runAtRoot(t, fixturePatterns)
	code, stdout, stderr := runAtRoot(t, append([]string{"-stats"}, fixturePatterns...))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if stdout != plain {
		t.Errorf("-stats changed stdout\n--- with ---\n%s--- without ---\n%s", stdout, plain)
	}
	if !strings.Contains(stderr, "analyzer") || !strings.Contains(stderr, "dimflow") {
		t.Errorf("-stats stderr missing the table:\n%s", stderr)
	}

	_, jsonOut, _ := runAtRoot(t, append([]string{"-stats", "-json"}, fixturePatterns...))
	var payload struct {
		Findings []Finding `json:"findings"`
		Stats    []lint.AnalyzerStat
	}
	if err := json.Unmarshal([]byte(jsonOut), &payload); err != nil {
		t.Fatalf("-stats -json output does not decode: %v", err)
	}
	if len(payload.Findings) == 0 {
		t.Error("stats payload carries no findings")
	}
	byName := make(map[string]lint.AnalyzerStat, len(payload.Stats))
	for _, s := range payload.Stats {
		byName[s.Name] = s
	}
	for _, a := range lint.All() {
		if _, ok := byName[a.Name]; !ok {
			t.Errorf("stats missing analyzer %s", a.Name)
		}
	}
	if s := byName["dimflow"]; s.Findings == 0 {
		t.Error("dimflow fixture findings not counted in stats")
	}
}

// TestExpectFlag pins the fixture-count gate: matching counts exit 0
// even though findings exist; a stale count or a dead analyzer (zero
// where findings are expected) exits 1 naming the rule.
func TestExpectFlag(t *testing.T) {
	_, jsonOut, _ := runAtRoot(t, append([]string{"-json"}, fixturePatterns...))
	var findings []Finding
	if err := json.Unmarshal([]byte(jsonOut), &findings); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, f := range findings {
		counts[f.Rule]++
	}
	writeCounts := func(m map[string]int) string {
		t.Helper()
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "counts.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	code, _, stderr := runAtRoot(t, append([]string{"-expect", writeCounts(counts)}, fixturePatterns...))
	if code != 0 {
		t.Fatalf("matching counts: exit %d, want 0; stderr:\n%s", code, stderr)
	}

	bad := make(map[string]int, len(counts))
	for r, n := range counts {
		bad[r] = n
	}
	bad["dimflow"]++
	code, _, stderr = runAtRoot(t, append([]string{"-expect", writeCounts(bad)}, fixturePatterns...))
	if code != 1 {
		t.Fatalf("stale counts: exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "rule dimflow") {
		t.Errorf("mismatch stderr does not name the rule:\n%s", stderr)
	}

	// The expected-counts file mirrors what the checked-in CI gate uses.
	code, _, stderr = runAtRoot(t, append([]string{"-expect", filepath.Join("cmd", "teclint", "testdata", "fixture_counts.json")}, fixturePatterns...))
	if code != 0 {
		t.Fatalf("checked-in fixture_counts.json is stale: exit %d; stderr:\n%s", code, stderr)
	}
}

// TestRulesFlag checks the -rules listing names every registered analyzer.
func TestRulesFlag(t *testing.T) {
	code, stdout, _ := runAtRoot(t, []string{"-rules"})
	if code != 0 {
		t.Fatalf("-rules exit code = %d", code)
	}
	for _, rule := range []string{"cachegen", "chanflow", "ctxflow", "dimflow", "droppederr", "errpath", "floateq", "goroleak", "lockbalance", "lockcopy", "maporder", "mutexblock", "nanflow", "obsclock", "oncemisuse", "spawnctx", "testhelper", "typederr", "unitsanity", "validatefirst", "wgbalance"} {
		if !strings.Contains(stdout, rule) {
			t.Errorf("-rules output missing %q:\n%s", rule, stdout)
		}
	}
}
