package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tecopt/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// fixturePatterns are the analyzer fixture packages, expressed relative
// to the module root. They deliberately seed violations, so linting them
// exercises every rule and the output formatting at once.
var fixturePatterns = []string{
	"internal/lint/testdata/droppederr",
	"internal/lint/testdata/floateq",
	"internal/lint/testdata/lockcopy",
	"internal/lint/testdata/maporder",
	"internal/lint/testdata/obsclock",
	"internal/lint/testdata/testhelper",
	"internal/lint/testdata/typederr",
	"internal/lint/testdata/unitsanity",
}

// runAtRoot invokes the teclint driver from the module root and returns
// (exit code, stdout, stderr).
func runAtRoot(t *testing.T, args []string) (int, string, string) {
	t.Helper()
	chdir(t, moduleRoot(t))
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// chdir changes the working directory for the duration of the test.
// (The tests here never call t.Parallel, so this is safe.)
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatalf("restoring working directory: %v", err)
		}
	})
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		t.Fatalf("module root not found from %s: %v", wd, err)
	}
	return root
}

// TestGoldenOutput pins the exact diagnostic stream produced for the
// seeded fixture packages: the `file:line: [rule] message` format, the
// sort order (file, then line), and the trailing finding count. Run
// with -update to regenerate testdata/golden.txt after intentional
// analyzer changes.
func TestGoldenOutput(t *testing.T) {
	goldenPath, err := filepath.Abs(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runAtRoot(t, fixturePatterns)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixtures seed violations); stderr:\n%s", code, stderr)
	}
	if want := "finding(s)"; !strings.Contains(stderr, want) {
		t.Errorf("stderr %q does not report the finding count", stderr)
	}

	if *update {
		if err := os.WriteFile(goldenPath, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (run `go test ./cmd/teclint -run TestGoldenOutput -update` to create): %v", err)
	}
	if stdout != string(golden) {
		t.Errorf("output differs from golden file\n--- got ---\n%s--- want ---\n%s", stdout, golden)
	}
}

// TestOutputDeterministic runs the driver twice over the same inputs and
// demands byte-identical output: map iteration or goroutine scheduling
// must never leak into the diagnostic stream.
func TestOutputDeterministic(t *testing.T) {
	_, first, _ := runAtRoot(t, fixturePatterns)
	_, second, _ := runAtRoot(t, fixturePatterns)
	if first != second {
		t.Errorf("two runs differ\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestOutputSorted verifies the documented ordering contract directly:
// findings are grouped by file and nondecreasing by line within a file.
func TestOutputSorted(t *testing.T) {
	_, stdout, _ := runAtRoot(t, fixturePatterns)
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected multiple findings, got %d line(s)", len(lines))
	}
	type pos struct {
		file string
		line string
	}
	var prev pos
	for i, ln := range lines {
		parts := strings.SplitN(ln, ":", 3)
		if len(parts) != 3 || !strings.Contains(parts[2], "[") {
			t.Fatalf("line %d not in file:line: [rule] message form: %q", i+1, ln)
		}
		cur := pos{parts[0], parts[1]}
		if i > 0 && cur.file == prev.file && len(cur.line) == len(prev.line) && cur.line < prev.line {
			t.Errorf("line %d out of order: %q after %q", i+1, ln, lines[i-1])
		}
		prev = cur
	}
}

// TestRepoLintsClean is the self-hosting gate: the production tree must
// produce zero diagnostics under its own analyzers.
func TestRepoLintsClean(t *testing.T) {
	code, stdout, stderr := runAtRoot(t, []string{"./..."})
	if code != 0 || stdout != "" {
		t.Fatalf("repository is not lint-clean (exit %d):\n%s%s", code, stdout, stderr)
	}
}

// TestRulesFlag checks the -rules listing names every registered analyzer.
func TestRulesFlag(t *testing.T) {
	code, stdout, _ := runAtRoot(t, []string{"-rules"})
	if code != 0 {
		t.Fatalf("-rules exit code = %d", code)
	}
	for _, rule := range []string{"droppederr", "floateq", "lockcopy", "maporder", "obsclock", "testhelper", "typederr", "unitsanity"} {
		if !strings.Contains(stdout, rule) {
			t.Errorf("-rules output missing %q:\n%s", rule, stdout)
		}
	}
}
