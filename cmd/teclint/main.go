// Command teclint runs the repository's static-analysis suite
// (internal/lint) over package directories and reports findings as
//
//	file:line: [rule] message
//
// sorted by file and line, exiting nonzero when any diagnostic is
// produced. It is the lint gate invoked by `make lint` and CI:
//
//	go run ./cmd/teclint ./...
//
// Arguments are package patterns: "./..." walks every package under
// the current module (skipping testdata), a plain directory path lints
// just that package. With no arguments, "./..." is assumed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tecopt/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("teclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listRules := fs.Bool("rules", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *listRules {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "teclint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "teclint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "teclint:", err)
		return 2
	}

	dirs, err := resolvePatterns(patterns, cwd)
	if err != nil {
		fmt.Fprintln(stderr, "teclint:", err)
		return 2
	}
	diags, err := lint.LintDirs(loader, dirs, analyzers, cwd)
	if err != nil {
		fmt.Fprintln(stderr, "teclint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "teclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// resolvePatterns expands package patterns into package directories.
// "dir/..." (including "./...") walks recursively; other arguments name
// a single package directory.
func resolvePatterns(patterns []string, cwd string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		if base, ok := strings.CutSuffix(p, "/..."); ok {
			if base == "" || base == "." {
				base = cwd
			}
			walked, err := lint.PackageDirs(absJoin(cwd, base))
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
			continue
		}
		add(absJoin(cwd, p))
	}
	return dirs, nil
}

func absJoin(cwd, p string) string {
	if filepath.IsAbs(p) {
		return filepath.Clean(p)
	}
	return filepath.Join(cwd, p)
}
