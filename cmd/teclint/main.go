// Command teclint runs the repository's static-analysis suite
// (internal/lint) over package directories and reports findings as
//
//	file:line: [rule] message
//
// sorted by file and line. It is the lint gate invoked by `make lint`
// and CI:
//
//	go run ./cmd/teclint ./...
//
// Arguments are package patterns: "./..." walks every package under
// the current module (skipping testdata), a plain directory path lints
// just that package. With no arguments, "./..." is assumed.
//
// Flags:
//
//	-rules         list the analyzers and exit
//	-json          emit findings as a JSON array instead of text
//	-format FMT    output format: text (default), json, or sarif
//	               (SARIF 2.1.0, the interchange format code-scanning
//	               dashboards ingest; -json is shorthand for
//	               -format=json)
//	-baseline F    suppress findings recorded in the JSON baseline file F
//	-parallel N    run analyzers over N packages concurrently
//	               (0 = all cores, 1 = serial; output is identical)
//	-stats         report per-analyzer wall time and finding counts
//	               (a table on stderr; with -json the output becomes a
//	               {"findings":..., "stats":...} object)
//	-expect F      compare per-rule finding counts against the JSON
//	               object {"rule": count, ...} in F: exit 0 iff they
//	               match exactly. The CI fixture gate uses this to catch
//	               analyzers that silently stop firing.
//	-log FMT       structured logging to stderr (off, text or json), the
//	               uniform obs flag pair; -log-level sets the threshold.
//
// Exit codes follow the tecerr contract: 0 clean, 1 when findings
// survive the baseline, 2 (tecerr.CodeInvalidInput) when packages fail
// to load or type-check, or on flag/baseline misuse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tecopt/internal/lint"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// loadFailure wraps a loader or baseline error so the process exit code
// (via tecerr.ExitCode) distinguishes "could not analyze" from "found
// problems".
func loadFailure(op string, err error) error {
	return &tecerr.Error{Code: tecerr.CodeInvalidInput, Op: op, Msg: "teclint: " + op, Err: err}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("teclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listRules := fs.Bool("rules", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	format := fs.String("format", "", "output format: text, json, or sarif (-json is shorthand for -format=json)")
	baselinePath := fs.String("baseline", "", "JSON baseline file of findings to suppress")
	parallel := fs.Int("parallel", 0, "packages analyzed concurrently (0 = all cores, 1 = serial)")
	withStats := fs.Bool("stats", false, "report per-analyzer wall time and finding counts")
	expectPath := fs.String("expect", "", "JSON file of expected per-rule finding counts; exit 0 iff they match")
	logFlags := obs.BindLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	restoreLog, err := logFlags.Install(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "teclint:", err)
		return 2
	}
	defer restoreLog()
	outFormat := *format
	if outFormat == "" {
		outFormat = "text"
		if *asJSON {
			outFormat = "json"
		}
	}
	switch outFormat {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "teclint: unknown -format %q (want text, json, or sarif)\n", outFormat)
		return 2
	}
	analyzers := lint.All()
	if *listRules {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "teclint:", err)
		return tecerr.ExitCode(loadFailure("getwd", err))
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "teclint:", err)
		return tecerr.ExitCode(loadFailure("module root", err))
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "teclint:", err)
		return tecerr.ExitCode(loadFailure("loader", err))
	}

	dirs, err := resolvePatterns(patterns, cwd)
	if err != nil {
		fmt.Fprintln(stderr, "teclint:", err)
		return tecerr.ExitCode(loadFailure("resolving patterns", err))
	}
	var stats *lint.StatsCollector
	if *withStats {
		stats = lint.NewStatsCollector()
	}
	diags, err := lint.LintDirsParallelStats(loader, dirs, analyzers, cwd, *parallel, stats)
	if err != nil {
		fmt.Fprintln(stderr, "teclint:", err)
		return tecerr.ExitCode(loadFailure("loading packages", err))
	}

	if *baselinePath != "" {
		baseline, err := readBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "teclint:", err)
			return tecerr.ExitCode(loadFailure("reading baseline", err))
		}
		diags = filterBaseline(diags, baseline)
	}

	switch outFormat {
	case "json":
		if err := writeJSON(stdout, diags, stats); err != nil {
			fmt.Fprintln(stderr, "teclint:", err)
			return tecerr.ExitCode(loadFailure("encoding json", err))
		}
	case "sarif":
		if err := writeSARIF(stdout, diags, analyzers); err != nil {
			fmt.Fprintln(stderr, "teclint:", err)
			return tecerr.ExitCode(loadFailure("encoding sarif", err))
		}
		writeStatsTable(stderr, stats)
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
		writeStatsTable(stderr, stats)
	}

	if *expectPath != "" {
		expected, err := readExpected(*expectPath)
		if err != nil {
			fmt.Fprintln(stderr, "teclint:", err)
			return tecerr.ExitCode(loadFailure("reading expected counts", err))
		}
		if mismatches := compareExpected(diags, expected); len(mismatches) > 0 {
			for _, m := range mismatches {
				fmt.Fprintln(stderr, "teclint:", m)
			}
			return 1
		}
		fmt.Fprintf(stderr, "teclint: finding counts match %s\n", *expectPath)
		return 0
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "teclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// Finding is the JSON shape of one diagnostic, stable for tooling: the
// same struct round-trips baselines and the -json output.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func toFinding(d lint.Diagnostic) Finding {
	return Finding{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Rule: d.Rule, Message: d.Message}
}

// writeJSON emits the findings as an indented JSON array (always an
// array, never null, so consumers can range unconditionally). With
// -stats the output becomes a {"findings":..., "stats":...} object —
// the bare-array shape is preserved whenever -stats is absent so
// existing baselines and pipelines keep parsing.
func writeJSON(w io.Writer, diags []lint.Diagnostic, stats *lint.StatsCollector) error {
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, toFinding(d))
	}
	var payload any = findings
	if stats != nil {
		payload = struct {
			Findings []Finding           `json:"findings"`
			Stats    []lint.AnalyzerStat `json:"stats"`
		}{Findings: findings, Stats: stats.Stats()}
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// writeStatsTable prints the per-analyzer accounting to stderr in text
// mode, keeping stdout byte-identical with and without -stats. Finding
// counts here are post-suppression but pre-baseline (they are gathered
// inside the analysis run, before -baseline filtering).
func writeStatsTable(w io.Writer, stats *lint.StatsCollector) {
	if stats == nil {
		return
	}
	fmt.Fprintf(w, "%-13s %12s %9s\n", "analyzer", "wall", "findings")
	for _, s := range stats.Stats() {
		fmt.Fprintf(w, "%-13s %12s %9d\n", s.Name, time.Duration(s.Nanos).Round(time.Microsecond), s.Findings)
	}
}

// readExpected parses a -expect file: a JSON object mapping rule name
// to the exact number of findings that rule must produce.
func readExpected(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var expected map[string]int
	if err := json.Unmarshal(data, &expected); err != nil {
		return nil, fmt.Errorf("parsing expected counts %s: %w", path, err)
	}
	return expected, nil
}

// compareExpected diffs actual per-rule finding counts against the
// expected map, returning one message per rule that is off (sorted by
// rule name). Rules absent from the expected map must produce zero
// findings.
func compareExpected(diags []lint.Diagnostic, expected map[string]int) []string {
	actual := make(map[string]int)
	for _, d := range diags {
		actual[d.Rule]++
	}
	rules := make(map[string]bool, len(actual)+len(expected))
	for r := range actual {
		rules[r] = true
	}
	for r := range expected {
		rules[r] = true
	}
	names := make([]string, 0, len(rules))
	for r := range rules {
		names = append(names, r)
	}
	sort.Strings(names)
	var mismatches []string
	for _, r := range names {
		if actual[r] != expected[r] {
			mismatches = append(mismatches, fmt.Sprintf("rule %s: %d finding(s), expected %d", r, actual[r], expected[r]))
		}
	}
	return mismatches
}

// baselineKey identifies a finding for baseline matching. Line and
// column are deliberately excluded: a baseline entry keeps suppressing
// its finding as unrelated edits shift it around a file.
type baselineKey struct {
	file string
	rule string
	msg  string
}

// readBaseline parses a -json findings array into a suppression
// multiset: two identical findings in a file need two baseline entries.
func readBaseline(path string) (map[baselineKey]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	if err := json.Unmarshal(data, &findings); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	out := make(map[baselineKey]int, len(findings))
	for _, f := range findings {
		out[baselineKey{file: f.File, rule: f.Rule, msg: f.Message}]++
	}
	return out, nil
}

// filterBaseline drops findings recorded in the baseline, consuming
// each entry at most once.
func filterBaseline(diags []lint.Diagnostic, baseline map[baselineKey]int) []lint.Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		key := baselineKey{file: d.Pos.Filename, rule: d.Rule, msg: d.Message}
		if baseline[key] > 0 {
			baseline[key]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// resolvePatterns expands package patterns into package directories.
// "dir/..." (including "./...") walks recursively; other arguments name
// a single package directory.
func resolvePatterns(patterns []string, cwd string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		if base, ok := strings.CutSuffix(p, "/..."); ok {
			if base == "" || base == "." {
				base = cwd
			}
			walked, err := lint.PackageDirs(absJoin(cwd, base))
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
			continue
		}
		add(absJoin(cwd, p))
	}
	return dirs, nil
}

func absJoin(cwd, p string) string {
	if filepath.IsAbs(p) {
		return filepath.Clean(p)
	}
	return filepath.Join(cwd, p)
}
