// Package broken deliberately fails type-checking; the driver tests use
// it to pin the load-failure exit code (2, tecerr.CodeInvalidInput).
// The go tool never builds testdata, so this does not break `go build`.
package broken

func mismatched() int {
	return "not an int"
}
