package main

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"

	"tecopt/internal/lint"
)

// SARIF 2.1.0 output (-format=sarif): the static-analysis interchange
// format GitHub code scanning and most lint dashboards ingest. Only
// the required subset is emitted — tool.driver with the rule catalog,
// and one result per finding with a physical location — and the
// encoding is a single deterministic json.MarshalIndent pass, so the
// stream is byte-stable for golden tests. File URIs are the same
// module-relative paths as the text and JSON formats, with forward
// slashes as the SARIF spec requires.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF emits the findings as one SARIF 2.1.0 run. The rule
// catalog lists every registered analyzer (plus the framework's
// badignore pseudo-rule when it fires), so a clean run still documents
// what was checked.
func writeSARIF(w io.Writer, diags []lint.Diagnostic, analyzers []*lint.Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := make(map[string]int, len(analyzers)+1)
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	for _, d := range diags {
		if _, ok := index[d.Rule]; !ok {
			index[d.Rule] = len(rules)
			rules = append(rules, sarifRule{ID: d.Rule, ShortDescription: sarifMessage{Text: "teclint framework rule"}})
		}
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: index[d.Rule],
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "teclint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}
