// Command runaway explores the thermal-runaway behaviour of Section
// V.C.1: it computes the supply-current limit lambda_m for the Alpha
// chip's greedy deployment and sweeps the transfer coefficient h_kl(i)
// and peak temperature toward the limit, regenerating Figure 6.
//
// Usage:
//
//	runaway [-points 16] [-parallel N] [-transient]
package main

import (
	"flag"
	"fmt"
	"os"

	"tecopt/internal/bench"
	"tecopt/internal/core"
	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/obs"
	"tecopt/internal/power"
	"tecopt/internal/tecerr"
	"tecopt/internal/transient"
)

// obsSession is the tool-wide observability session; fatal flushes it
// before exiting.
var obsSession *obs.Session

func main() {
	points := flag.Int("points", 16, "number of current samples")
	parallel := flag.Int("parallel", 1, "current-grid points solved concurrently (0 = all cores, 1 = serial)")
	doTransient := flag.Bool("transient", false, "also simulate a beyond-limit transient trajectory")
	csvPath := flag.String("csv", "", "write the sweep as CSV (current_A,hkl_KperW,peak_C) to this path")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	var err error
	obsSession, err = obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	defer closeObs()
	ctx, cancel := obsFlags.Context()
	defer cancel()

	res, err := bench.RunFigure6Opts(bench.Figure6Options{Points: *points, Parallel: *parallel, Ctx: ctx})
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench.FormatFigure6(res))

	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out, "current_A,hkl_KperW,peak_C")
		for n := range res.Currents {
			fmt.Fprintf(out, "%g,%g,%g\n", res.Currents[n], res.Hkl[n], res.PeakC[n])
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("sweep written to %s\n", *csvPath)
	}

	if *doTransient {
		f, g := floorplan.Alpha21364Grid()
		p := power.AlphaTilePowers(f, g)
		dep, err := core.GreedyDeploy(core.Config{TilePower: p}, material.CelsiusToKelvin(85), core.CurrentOptions{Ctx: ctx})
		if err != nil {
			fatal(err)
		}
		sys := dep.System
		fmt.Printf("\ntransient at 1.2 * lambda_m = %.2f A (dynamic runaway):\n", 1.2*res.LambdaM)
		tr, err := transient.Simulate(sys, []transient.Phase{{Current: 1.2 * res.LambdaM, Duration: 600}},
			transient.Options{Dt: 0.05, SampleEvery: 100, RunawayCeilingK: 600, Ctx: ctx})
		if err != nil {
			fatal(err)
		}
		for _, s := range tr.Samples {
			fmt.Printf("  t=%7.2fs peak=%8.2f C\n", s.TimeS, material.KelvinToCelsius(s.PeakK))
		}
		if tr.Runaway {
			fmt.Println("  -> thermal runaway: trajectory crossed the temperature ceiling")
		} else {
			fmt.Println("  -> no runaway within the horizon")
		}
	}
}

// fatal reports the error and exits with its tecerr taxonomy status
// (2 invalid input, 3 not PD, 4 diverged, 5 cancelled, ...).
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "runaway:", err)
	closeObs()
	os.Exit(tecerr.ExitCode(err))
}

// closeObs flushes the observability session, reporting (but not
// failing on) write errors.
func closeObs() {
	if err := obsSession.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "runaway:", err)
	}
	obsSession = nil
}
