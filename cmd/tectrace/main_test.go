package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tecopt/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildTrace records a small deterministic solve tree on a manual
// clock: an optimize_current root with three reusable solves (one per
// regime), a guarded fallback chain, a pool task on a worker track, a
// cache event, and a runaway probe.
func buildTrace(t *testing.T) *obs.Registry {
	t.Helper()
	clk := &obs.ManualClock{}
	r := obs.New(clk)
	r.EnableTraceOpts(obs.TraceOptions{Flight: true})
	ctx := context.Background()

	ctx, root := r.StartSpanCtx(ctx, "core.optimize_current") // id 1
	clk.Advance(time.Microsecond)

	sctx, sp := r.StartSpanCtx(ctx, "thermal.reusable.solve") // id 2
	sp.AnnotateFloat("current", 1.25)
	sp.Annotate("regime", "smw")
	clk.Advance(10 * time.Microsecond)
	r.EventCtx(sctx, "engine.factors.hit", 1.25,
		obs.Attr{Key: "gen", Value: "3"}, obs.Attr{Key: "current", Value: "1.25"})
	sp.End()

	_, sp = r.StartSpanCtx(ctx, "thermal.reusable.solve") // id 3
	sp.AnnotateFloat("current", 3.5)
	sp.Annotate("regime", "direct")
	sp.Annotate("near_memo", "true")
	clk.Advance(40 * time.Microsecond)
	sp.End()

	gctx, sp := r.StartSpanCtx(ctx, "thermal.reusable.solve") // id 4
	sp.AnnotateFloat("current", 2.0)
	clk.Advance(5 * time.Microsecond)
	r.EventCtx(gctx, "thermal.guarded.fallback", 1,
		obs.Attr{Key: "method", Value: "band-cholesky"},
		obs.Attr{Key: "reason", Value: "not_pd"})
	_, gsp := r.StartSpanCtx(gctx, "thermal.guarded.solve") // id 5
	clk.Advance(120 * time.Microsecond)
	gsp.Annotate("method", "cg")
	gsp.AnnotateInt("cg_iterations", 42)
	gsp.Annotate("warm_start", "true")
	gsp.End()
	sp.Annotate("regime", "guarded")
	sp.Annotate("guard_reason", "not_pd")
	sp.End()

	r.EventCtx(ctx, "core.runaway.probe", 4.7, obs.Attr{Key: "pd", Value: "false"})
	root.End()

	// One standalone guarded solve on a worker track (pool task).
	wctx := obs.ContextWithTrack(context.Background(), 2)
	wctx, wsp := r.StartSpanCtx(wctx, "engine.pool.task") // id 6
	clk.Advance(time.Microsecond)
	_, gsp = r.StartSpanCtx(wctx, "thermal.guarded.solve") // id 7
	clk.Advance(30 * time.Microsecond)
	gsp.Annotate("method", "band-cholesky")
	gsp.End()
	wsp.End()
	return r
}

// checkGolden compares got against the golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestReportGoldenJSONL(t *testing.T) {
	r := buildTrace(t)
	var trace bytes.Buffer
	if err := r.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "flight.jsonl", trace.Bytes())
	runGolden(t, trace.Bytes())
}

func TestReportGoldenPerfetto(t *testing.T) {
	r := buildTrace(t)
	var trace bytes.Buffer
	if err := r.WriteTracePerfetto(&trace); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "flight.perfetto.json", trace.Bytes())
	runGolden(t, trace.Bytes())
}

// runGolden runs the analyzer over the trace bytes and checks the
// report golden. Both exporters must yield the identical report — the
// Perfetto parser round-trips everything the analyzer reads.
func runGolden(t *testing.T, trace []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace")
	if err := os.WriteFile(path, trace, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(path, 5, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.golden", out.Bytes())
}

func TestFlatTraceDegradesGracefully(t *testing.T) {
	clk := &obs.ManualClock{}
	r := obs.New(clk)
	r.EnableTrace(0) // flat: no flight recorder
	sp := r.StartSpan("thermal.guarded.solve")
	clk.Advance(time.Millisecond)
	sp.End()
	r.Event("core.runaway_limit.bracket_hi", 4.5)

	var trace bytes.Buffer
	if err := r.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace")
	if err := os.WriteFile(path, trace.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(path, 5, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "flat trace") {
		t.Errorf("flat trace not flagged:\n%s", s)
	}
	if !strings.Contains(s, "standalone-guarded") {
		t.Errorf("flat guarded solve not counted:\n%s", s)
	}
}

func TestEmptyAndMalformedInput(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, 5, &bytes.Buffer{}); err == nil {
		t.Error("empty file: want error")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, 5, &bytes.Buffer{}); err == nil {
		t.Error("malformed JSONL: want error")
	}
}
