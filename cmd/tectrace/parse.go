package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"

	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

// traceData is the normalized in-memory form of a recording: the event
// list in recorded order plus the truncation count, independent of
// which exporter wrote the file.
type traceData struct {
	events  []obs.TraceEvent
	dropped uint64
}

// parseTrace sniffs the file format and decodes it. JSONL files carry
// one TraceEvent object per line; Perfetto files are a single Chrome
// trace-event document whose first line contains the "traceEvents"
// key (span/event names never do, so the sniff cannot misfire).
func parseTrace(data []byte) (*traceData, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, tecerr.New(tecerr.CodeInvalidInput, "tectrace", "empty trace file")
	}
	head := trimmed
	if i := bytes.IndexByte(head, '\n'); i >= 0 {
		head = head[:i]
	}
	if bytes.Contains(head, []byte(`"traceEvents"`)) {
		return parsePerfetto(trimmed)
	}
	return parseJSONL(trimmed)
}

// parseJSONL decodes the flight (or flat) JSONL exporter output. The
// final {"kind":"dropped",...} marker, when present, becomes the
// dropped count instead of an event.
func parseJSONL(data []byte) (*traceData, error) {
	td := &traceData{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec struct {
			obs.TraceEvent
			Dropped uint64 `json:"dropped"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, tecerr.Wrapf(tecerr.CodeInvalidInput, "tectrace", err,
				"bad JSONL record on line %d", lineNo)
		}
		if rec.Kind == "dropped" {
			td.dropped = rec.Dropped
			continue
		}
		sortAttrs(rec.Attrs)
		td.events = append(td.events, rec.TraceEvent)
	}
	if err := sc.Err(); err != nil {
		return nil, tecerr.Wrap(tecerr.CodeInvalidInput, "tectrace", "reading JSONL", err)
	}
	return td, nil
}

// perfettoEvent mirrors the subset of the Chrome trace-event record the
// exporter emits. Timestamps are microseconds (three decimals, exact).
type perfettoEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TID   int64          `json:"tid"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	Args  map[string]any `json:"args"`
}

// parsePerfetto decodes a Chrome trace-event document back into the
// normalized event list: "X" records become spans, "i" records become
// events, "M" metadata and the trace.dropped marker are consumed.
func parsePerfetto(data []byte) (*traceData, error) {
	var doc struct {
		TraceEvents []perfettoEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, tecerr.Wrap(tecerr.CodeInvalidInput, "tectrace", "bad Perfetto document", err)
	}
	td := &traceData{}
	for _, pe := range doc.TraceEvents {
		switch pe.Phase {
		case "M":
			continue
		case "i":
			if pe.Name == "trace.dropped" {
				td.dropped = uint64(argFloat(pe.Args, "dropped"))
				continue
			}
		}
		ev := obs.TraceEvent{
			Name:    pe.Name,
			StartNS: usToNS(pe.TS),
			Track:   pe.TID,
			ID:      uint64(argFloat(pe.Args, "id")),
			Parent:  uint64(argFloat(pe.Args, "parent")),
		}
		if pe.Phase == "X" {
			ev.Kind = "span"
			ev.DurNS = usToNS(pe.Dur)
		} else {
			ev.Kind = "event"
			ev.Value = argFloat(pe.Args, "value")
		}
		for k, v := range pe.Args {
			switch k {
			case "id", "parent", "value":
				continue
			}
			if s, ok := v.(string); ok {
				ev.Attrs = append(ev.Attrs, obs.Attr{Key: k, Value: s})
			}
		}
		sortAttrs(ev.Attrs)
		td.events = append(td.events, ev)
	}
	return td, nil
}

// usToNS converts the exporter's microsecond timestamps (exact to three
// decimals) back to integer nanoseconds.
func usToNS(us float64) int64 { return int64(math.Round(us * 1e3)) }

// argFloat reads a numeric arg (JSON numbers decode as float64).
func argFloat(args map[string]any, key string) float64 {
	f, _ := args[key].(float64)
	return f
}

// sortAttrs orders attributes by key. Perfetto args decode from a map
// (randomized iteration), JSONL keeps insertion order; a canonical
// order makes the report identical no matter which exporter wrote the
// file. The analyzer only reads attrs by key, so nothing is lost.
func sortAttrs(attrs []obs.Attr) {
	for i := 1; i < len(attrs); i++ {
		for j := i; j > 0 && attrs[j].Key < attrs[j-1].Key; j-- {
			attrs[j], attrs[j-1] = attrs[j-1], attrs[j]
		}
	}
}
