// Command tectrace summarizes a solve-path flight recording produced by
// the -trace flag of the solver CLIs: per-regime solve counts (SMW /
// direct / guarded / beyond-limit), the top spans by cumulative and
// self time, the critical path of the slowest solve, and every
// degradation event (guarded-chain fallbacks, trace truncation).
//
// Usage:
//
//	tectrace [-top 10] trace-file
//
// Both trace formats are accepted and auto-detected: hierarchical
// JSONL (-trace-format=flight) and Chrome trace-event JSON
// (-trace-format=perfetto). Flat JSONL (the default -trace output)
// parses too, but carries no span hierarchy, so the parent-dependent
// reports (self time, critical path) degrade to per-span durations.
//
// Exit status follows the tecerr taxonomy (0 ok, 2 invalid input).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

func main() {
	top := flag.Int("top", 10, "number of spans in the top-by-time tables")
	logFlags := obs.BindLogFlags(flag.CommandLine)
	flag.Parse()
	restoreLog, err := logFlags.Install(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tectrace:", err)
		os.Exit(tecerr.ExitCode(tecerr.New(tecerr.CodeInvalidInput, "tectrace", err.Error())))
	}
	defer restoreLog()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tectrace [-top N] trace-file")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *top, os.Stdout); err != nil {
		if l := obs.Logger(); l != nil {
			l.Error("tectrace failed", tecerr.LogAttrs(err)...)
		}
		fmt.Fprintln(os.Stderr, "tectrace:", err)
		os.Exit(tecerr.ExitCode(err))
	}
}

func run(path string, top int, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return tecerr.Wrap(tecerr.CodeInvalidInput, "tectrace", "reading trace", err)
	}
	events, err := parseTrace(data)
	if err != nil {
		return err
	}
	rep := analyze(events, top)
	_, err = io.WriteString(out, rep.format())
	return err
}
