package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tecopt/internal/obs"
)

// Span names of the per-current solve paths. A reusable.solve span's
// "regime" attribute names which path served the current: "smw" (the
// Sherman-Morrison-Woodbury fast path, including the rank-0 shortcut),
// "direct" (memoized near-limit refactorization), "guarded" (SMW
// residual check tripped, fell back to the guarded chain) or
// "beyond-limit" (past lambda_m, expected indefinite).
const (
	reusableSolveSpan = "thermal.reusable.solve"
	guardedSolveSpan  = "thermal.guarded.solve"
	fallbackEvent     = "thermal.guarded.fallback"
)

// nameStat aggregates spans sharing a name.
type nameStat struct {
	name  string
	count int
	cum   int64 // summed durations
	self  int64 // summed durations minus direct children
}

// pathStep is one span on the critical path.
type pathStep struct {
	ev    obs.TraceEvent
	depth int
}

// report is everything the analyzer derives from one recording.
type report struct {
	spans, points int
	hierarchical  bool
	wallNS        int64 // max span end - min span start
	tracks        []int64

	regimes      map[string]int
	regimeTotal  int
	guardReasons map[string]int

	byCum, bySelf []nameStat
	top           int

	critical     []pathStep
	slowestSolve *obs.TraceEvent

	fallbacks []obs.TraceEvent
	dropped   uint64
}

// analyze computes the report: per-regime solve counts, top spans by
// cumulative and self time, the critical path through the slowest
// solve, and the degradation record.
func analyze(td *traceData, top int) *report {
	rep := &report{
		top:          top,
		regimes:      map[string]int{},
		guardReasons: map[string]int{},
		dropped:      td.dropped,
	}

	byID := map[uint64]int{} // span ID -> index in td.events
	children := map[uint64][]int{}
	trackSet := map[int64]bool{}
	var minStart, maxEnd int64
	for i, ev := range td.events {
		trackSet[ev.Track] = true
		if ev.ID != 0 {
			rep.hierarchical = true
			byID[ev.ID] = i
			children[ev.Parent] = append(children[ev.Parent], i)
		}
		if ev.Kind != "span" {
			rep.points++
			if ev.Name == fallbackEvent {
				rep.fallbacks = append(rep.fallbacks, ev)
			}
			continue
		}
		rep.spans++
		if rep.spans == 1 || ev.StartNS < minStart {
			minStart = ev.StartNS
		}
		if end := ev.StartNS + ev.DurNS; end > maxEnd {
			maxEnd = end
		}
		switch ev.Name {
		case reusableSolveSpan:
			regime := attr(ev, "regime")
			if regime == "" {
				regime = "(unknown)"
			}
			rep.regimes[regime]++
			rep.regimeTotal++
			if regime == "guarded" {
				if reason := attr(ev, "guard_reason"); reason != "" {
					rep.guardReasons[reason]++
				}
			}
		case guardedSolveSpan:
			// Standalone guarded solves (no reusable parent span) still
			// count as solves; regime comes from the method used.
			if !rep.hierarchical || parentName(td, byID, ev) != reusableSolveSpan {
				rep.regimes["standalone-guarded"]++
				rep.regimeTotal++
			}
		}
	}
	if rep.spans > 0 {
		rep.wallNS = maxEnd - minStart
	}
	for t := range trackSet {
		rep.tracks = append(rep.tracks, t)
	}
	sort.Slice(rep.tracks, func(i, j int) bool { return rep.tracks[i] < rep.tracks[j] })

	rep.byCum, rep.bySelf = rankSpans(td, children, top)
	rep.critical, rep.slowestSolve = criticalPath(td, byID, children)
	return rep
}

// attr returns the value of the named attribute ("" when absent).
func attr(ev obs.TraceEvent, key string) string {
	for _, a := range ev.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// parentName resolves the name of the span enclosing ev ("" at root).
func parentName(td *traceData, byID map[uint64]int, ev obs.TraceEvent) string {
	if i, ok := byID[ev.Parent]; ok {
		return td.events[i].Name
	}
	return ""
}

// rankSpans aggregates spans by name and returns the top entries by
// cumulative and by self time. Self time is the span's duration minus
// its direct children's durations; without hierarchy (flat traces) the
// two rankings coincide.
func rankSpans(td *traceData, children map[uint64][]int, top int) (byCum, bySelf []nameStat) {
	agg := map[string]*nameStat{}
	for _, ev := range td.events {
		if ev.Kind != "span" {
			continue
		}
		st := agg[ev.Name]
		if st == nil {
			st = &nameStat{name: ev.Name}
			agg[ev.Name] = st
		}
		st.count++
		st.cum += ev.DurNS
		self := ev.DurNS
		for _, ci := range children[ev.ID] {
			if c := td.events[ci]; c.Kind == "span" {
				self -= c.DurNS
			}
		}
		if self < 0 {
			self = 0
		}
		st.self += self
	}
	all := make([]nameStat, 0, len(agg))
	for _, st := range agg {
		all = append(all, *st)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	byCum = topN(all, top, func(s nameStat) int64 { return s.cum })
	bySelf = topN(all, top, func(s nameStat) int64 { return s.self })
	return byCum, bySelf
}

// topN sorts a copy of stats by the key (descending, name-ascending
// ties) and truncates to n.
func topN(stats []nameStat, n int, key func(nameStat) int64) []nameStat {
	out := make([]nameStat, len(stats))
	copy(out, stats)
	sort.Slice(out, func(i, j int) bool {
		if key(out[i]) != key(out[j]) {
			return key(out[i]) > key(out[j])
		}
		return out[i].name < out[j].name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// criticalPath locates the slowest solve span (reusable or guarded),
// walks up to its root, then extends downward through the longest
// child at each level. Requires hierarchy; returns nil for flat traces.
func criticalPath(td *traceData, byID map[uint64]int, children map[uint64][]int) ([]pathStep, *obs.TraceEvent) {
	var slow *obs.TraceEvent
	for i := range td.events {
		ev := &td.events[i]
		if ev.Kind != "span" || ev.ID == 0 {
			continue
		}
		if ev.Name != reusableSolveSpan && ev.Name != guardedSolveSpan {
			continue
		}
		if slow == nil || ev.DurNS > slow.DurNS {
			slow = ev
		}
	}
	if slow == nil {
		return nil, nil
	}

	// Ancestor chain, root first.
	var up []obs.TraceEvent
	for cur := *slow; ; {
		up = append(up, cur)
		pi, ok := byID[cur.Parent]
		if !ok {
			break
		}
		cur = td.events[pi]
	}
	var path []pathStep
	for i := len(up) - 1; i >= 0; i-- {
		path = append(path, pathStep{ev: up[i], depth: len(up) - 1 - i})
	}

	// Longest-child descent below the slowest solve.
	depth := len(path) - 1
	for cur := *slow; ; {
		var next *obs.TraceEvent
		for _, ci := range children[cur.ID] {
			c := &td.events[ci]
			if c.Kind != "span" {
				continue
			}
			if next == nil || c.DurNS > next.DurNS {
				next = c
			}
		}
		if next == nil {
			break
		}
		depth++
		path = append(path, pathStep{ev: *next, depth: depth})
		cur = *next
	}
	return path, slow
}

// format renders the report as the tectrace text output.
func (rep *report) format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tectrace: %d spans, %d events", rep.spans, rep.points)
	if !rep.hierarchical {
		b.WriteString(" (flat trace: no span hierarchy; self time and critical path unavailable)")
	} else {
		fmt.Fprintf(&b, ", %d tracks, %s wall span", len(rep.tracks), durStr(rep.wallNS))
	}
	b.WriteString("\n")
	if rep.dropped > 0 {
		fmt.Fprintf(&b, "WARNING: trace truncated, %d events dropped — counts below are lower bounds\n", rep.dropped)
	}

	b.WriteString("\nSolve regimes (thermal.reusable.solve spans):\n")
	if rep.regimeTotal == 0 {
		b.WriteString("  none recorded (flight recorder off? use -trace-format=flight or perfetto)\n")
	} else {
		for _, name := range sortedKeys(rep.regimes) {
			n := rep.regimes[name]
			fmt.Fprintf(&b, "  %-18s %6d  (%5.1f%%)\n", name, n, 100*float64(n)/float64(rep.regimeTotal))
		}
		fmt.Fprintf(&b, "  %-18s %6d\n", "total", rep.regimeTotal)
	}

	if len(rep.byCum) > 0 {
		fmt.Fprintf(&b, "\nTop %d spans by cumulative time:\n", len(rep.byCum))
		writeStatTable(&b, rep.byCum, func(s nameStat) int64 { return s.cum })
		fmt.Fprintf(&b, "\nTop %d spans by self time:\n", len(rep.bySelf))
		writeStatTable(&b, rep.bySelf, func(s nameStat) int64 { return s.self })
	}

	if rep.slowestSolve != nil {
		fmt.Fprintf(&b, "\nCritical path of the slowest solve (%s, %s):\n",
			rep.slowestSolve.Name, durStr(rep.slowestSolve.DurNS))
		for _, st := range rep.critical {
			fmt.Fprintf(&b, "  %s%s %s  [id %d, track %d]%s\n",
				strings.Repeat("  ", st.depth), st.ev.Name, durStr(st.ev.DurNS),
				st.ev.ID, st.ev.Track, attrSuffix(st.ev))
		}
	}

	b.WriteString("\nDegradations:\n")
	clean := true
	if len(rep.fallbacks) > 0 {
		clean = false
		fmt.Fprintf(&b, "  %d guarded-chain fallback(s):\n", len(rep.fallbacks))
		for _, ev := range rep.fallbacks {
			fmt.Fprintf(&b, "    at %s: method %s failed (%s)\n",
				durStr(ev.StartNS), attrOr(ev, "method", "?"), attrOr(ev, "reason", "unknown"))
		}
	}
	for _, reason := range sortedKeys(rep.guardReasons) {
		clean = false
		fmt.Fprintf(&b, "  %d SMW guard trip(s): %s\n", rep.guardReasons[reason], reason)
	}
	if rep.dropped > 0 {
		clean = false
		fmt.Fprintf(&b, "  trace buffer overflow: %d events dropped\n", rep.dropped)
	}
	if clean {
		b.WriteString("  none\n")
	}
	return b.String()
}

// writeStatTable renders one ranking table.
func writeStatTable(b *strings.Builder, stats []nameStat, key func(nameStat) int64) {
	fmt.Fprintf(b, "  %-32s %8s %12s %12s\n", "span", "count", "total", "mean")
	for _, s := range stats {
		mean := key(s) / int64(s.count)
		fmt.Fprintf(b, "  %-32s %8d %12s %12s\n", s.name, s.count, durStr(key(s)), durStr(mean))
	}
}

// attrOr returns the attribute value or a fallback.
func attrOr(ev obs.TraceEvent, key, fallback string) string {
	if v := attr(ev, key); v != "" {
		return v
	}
	return fallback
}

// attrSuffix renders a span's attributes as " {k=v, ...}".
func attrSuffix(ev obs.TraceEvent) string {
	if len(ev.Attrs) == 0 {
		return ""
	}
	parts := make([]string, len(ev.Attrs))
	for i, a := range ev.Attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	return " {" + strings.Join(parts, ", ") + "}"
}

// durStr renders nanoseconds in a compact human unit.
func durStr(ns int64) string {
	return time.Duration(ns).String()
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
