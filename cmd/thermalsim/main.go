// Command thermalsim performs steady-state thermal analysis of a chip
// package, optionally with TEC devices at a fixed supply current, and
// prints a per-tile temperature map (the raw model of Section IV).
//
// Usage:
//
//	thermalsim [-chip alpha|hcNN] [-tec 100,101,102] [-current 6.0] [-grid]
//	           [-flp chip.flp -ptrace chip.ptrace]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tecopt/internal/chipload"
	"tecopt/internal/core"
	"tecopt/internal/material"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
	"tecopt/internal/visual"
)

// obsSession is the tool-wide observability session; fatal flushes it
// before exiting.
var obsSession *obs.Session

// closeObs flushes the observability session, reporting (but not
// failing on) write errors.
func closeObs() {
	if err := obsSession.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "thermalsim:", err)
	}
	obsSession = nil
}

func main() {
	chip := flag.String("chip", "alpha", "benchmark chip: alpha, hc01..hc10, or hc:<seed>")
	tecList := flag.String("tec", "", "comma-separated TEC tile indices (empty = passive)")
	current := flag.Float64("current", 0, "TEC supply current (A)")
	gridOut := flag.Bool("grid", false, "print the per-tile temperature grid")
	pngPath := flag.String("png", "", "write a heatmap PNG of the silicon layer to this path")
	flpPath := flag.String("flp", "", "custom floorplan file (HotSpot .flp format)")
	ptracePath := flag.String("ptrace", "", "power trace for the custom floorplan (.ptrace)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	var err error
	obsSession, err = obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	defer closeObs()
	ctx, cancel := obsFlags.Context()
	defer cancel()

	loaded, err := chipload.Load(chipload.Spec{Name: *chip, FLP: *flpPath, Ptrace: *ptracePath})
	if err != nil {
		fatal(err)
	}
	var sites []int
	if *tecList != "" {
		for _, s := range strings.Split(*tecList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad TEC tile %q: %v", s, err))
			}
			sites = append(sites, v)
		}
	}
	cfg := core.Config{
		Geom: loaded.Geom,
		Cols: loaded.Grid.Cols, Rows: loaded.Grid.Rows,
		TilePower: loaded.TilePower,
	}
	// Validate the assembled configuration before any solve so a bad
	// input exits with the invalid-input status instead of a solver error.
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	sys, err := core.NewSystem(cfg, sites)
	if err != nil {
		fatal(err)
	}
	peak, tile, theta, err := sys.PeakAt(*current)
	if err != nil {
		fatal(fmt.Errorf("solve at %.3f A: %w", *current, err))
	}
	sil := sys.PN.SiliconTemps(theta)
	var mean float64
	for _, v := range sil {
		mean += v
	}
	mean /= float64(len(sil))

	fmt.Printf("chip %s: %d tiles, %d TEC(s) at %.3f A\n", loaded.Name, len(sil), len(sites), *current)
	fmt.Printf("  peak %.2f C at tile %d, mean %.2f C, ambient %.2f C\n",
		material.KelvinToCelsius(peak), tile, material.KelvinToCelsius(mean),
		material.KelvinToCelsius(sys.Cfg.Geom.AmbientK))
	if len(sites) > 0 {
		fmt.Printf("  TEC input power %.3f W", sys.TECPower(theta, *current))
		if *current > 0 {
			fmt.Printf(", COP %.2f", sys.Array.ArrayCOP(theta, *current))
		}
		fmt.Println()
		lambda, err := sys.RunawayLimit(core.RunawayOptions{Ctx: ctx})
		if err == nil {
			fmt.Printf("  runaway limit lambda_m = %.2f A\n", lambda)
		}
	}
	if *gridOut {
		g := loaded.Grid
		for r := g.Rows - 1; r >= 0; r-- {
			for c := 0; c < g.Cols; c++ {
				fmt.Printf("%6.1f ", material.KelvinToCelsius(sil[g.TileIndex(c, r)]))
			}
			fmt.Println()
		}
	}
	if *pngPath != "" {
		out, err := os.Create(*pngPath)
		if err != nil {
			fatal(err)
		}
		err = visual.WriteHeatmap(out, loaded.Grid, sil, visual.HeatmapOptions{
			TECSites:  sites,
			Floorplan: loaded.Floorplan,
			ColorBar:  true,
		})
		if cerr := out.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  heatmap written to %s\n", *pngPath)
	}
}

// fatal reports the error and exits with its tecerr taxonomy status.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermalsim:", err)
	closeObs()
	os.Exit(tecerr.ExitCode(err))
}
