// Command conjecture runs the randomized verification campaign for the
// paper's Conjecture 1 (Section V.C.2): for random positive definite
// Stieltjes matrices S with H = S^{-1}, DIAG(h_k) H DIAG(h_l) is
// positive definite for every pair of rows. The paper reports millions
// of matrices verified; this tool runs campaigns of any size.
//
// Usage:
//
//	conjecture [-matrices 1000] [-maxorder 20] [-pairs 0] [-seed 1] [-parallel N]
//
// -pairs 0 checks every (k, l) pair per matrix.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"tecopt/internal/core"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

// closeObs flushes the observability session, reporting (but not
// failing on) write errors.
func closeObs(s *obs.Session) {
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "conjecture:", err)
	}
}

func main() {
	matrices := flag.Int("matrices", 1000, "number of random Stieltjes matrices")
	maxOrder := flag.Int("maxorder", 20, "maximum matrix order")
	pairs := flag.Int("pairs", 0, "sampled (k,l) pairs per matrix (0 = all pairs)")
	seed := flag.Int64("seed", 1, "PRNG seed")
	density := flag.Float64("density", 0.3, "extra-edge probability of the generator")
	family := flag.String("family", "random", "matrix ensemble: random, grid, path or tree")
	parallel := flag.Int("parallel", 1, "trial workers (0 = all cores, 1 = serial); report is identical either way")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	session, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "conjecture:", err)
		os.Exit(1)
	}
	defer closeObs(session)

	var fam core.MatrixFamily
	switch *family {
	case "random":
		fam = core.FamilyRandom
	case "grid":
		fam = core.FamilyGrid
	case "path":
		fam = core.FamilyPath
	case "tree":
		fam = core.FamilyTree
	default:
		fmt.Fprintf(os.Stderr, "conjecture: unknown family %q\n", *family)
		closeObs(session)
		os.Exit(2)
	}

	ctx, cancel := obsFlags.Context()
	defer cancel()
	start := time.Now()
	rep, err := core.VerifyConjecture1Ctx(ctx, rand.New(rand.NewSource(*seed)), core.ConjectureOptions{
		Matrices: *matrices, MaxOrder: *maxOrder, PairsPerMatrix: *pairs, Density: *density,
		Family: fam, Parallel: *parallel,
	})
	if err != nil {
		// Flush the partial campaign before exiting: the completed trials
		// are still evidence.
		fmt.Printf("conjecture-1 campaign (PARTIAL): %d matrices, %d pairs checked, %d violations before error\n",
			rep.Matrices, rep.PairsChecked, rep.Violations)
		fmt.Fprintln(os.Stderr, "conjecture:", err)
		closeObs(session)
		os.Exit(tecerr.ExitCode(err))
	}
	fmt.Printf("conjecture-1 campaign: %d matrices, %d pairs checked in %v\n",
		rep.Matrices, rep.PairsChecked, time.Since(start).Round(time.Millisecond))
	if rep.Violations == 0 {
		fmt.Println("no violations: Conjecture 1 holds on every sampled case")
		return
	}
	fmt.Printf("VIOLATIONS: %d\n", rep.Violations)
	if rep.FirstViolation != nil {
		fmt.Printf("first counterexample: k=%d l=%d S=\n%v\n",
			rep.FirstViolation.K, rep.FirstViolation.L, rep.FirstViolation.S)
	}
	closeObs(session)
	os.Exit(1)
}
