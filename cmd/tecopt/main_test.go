package main

import "testing"

func TestParseTiles(t *testing.T) {
	cols, rows, err := parseTiles("12x12")
	if err != nil || cols != 12 || rows != 12 {
		t.Fatalf("parseTiles(12x12) = %d,%d,%v", cols, rows, err)
	}
	cols, rows, err = parseTiles("16X8")
	if err != nil || cols != 16 || rows != 8 {
		t.Fatalf("parseTiles(16X8) = %d,%d,%v", cols, rows, err)
	}
	for _, bad := range []string{"12", "ax12", "12xb", ""} {
		if _, _, err := parseTiles(bad); err == nil {
			t.Errorf("parseTiles(%q) accepted", bad)
		}
	}
}
