// Command tecopt runs the end-to-end cooling-system configuration flow
// of the paper on a benchmark chip: greedy TEC deployment (Figure 5),
// convex supply-current optimization (Section V.C), and the full-cover
// baseline comparison (Table I columns).
//
// Usage:
//
//	tecopt [-chip alpha|hcNN|hc:<seed>] [-limit 85] [-map]
//	       [-method golden|gradient|brent]
//	       [-flp chip.flp -ptrace chip.ptrace [-tiles 12x12] [-margin 1.2]]
//	       [observability flags: -metrics, -trace FILE, -trace-format FMT,
//	        -log text|json, -log-level LVL, -pprof ADDR, -timeout DUR]
//
// Examples:
//
//	tecopt -chip alpha -limit 85 -map
//	tecopt -chip hc03
//	tecopt -flp mychip.flp -ptrace mychip.ptrace -tiles 12x12
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tecopt/internal/chipload"
	"tecopt/internal/core"
	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

func main() {
	chip := flag.String("chip", "alpha", "benchmark chip: alpha, hc01..hc10, or hc:<seed>")
	limitC := flag.Float64("limit", 85, "maximum allowable silicon temperature (C)")
	showMap := flag.Bool("map", false, "print the Figure-7-style deployment map")
	method := flag.String("method", "golden", "current optimizer: golden, gradient or brent")
	fullCover := flag.Bool("fullcover", true, "also run the full-cover baseline")
	flpPath := flag.String("flp", "", "custom floorplan file (HotSpot .flp format)")
	ptracePath := flag.String("ptrace", "", "power trace for the custom floorplan (.ptrace)")
	tiles := flag.String("tiles", "12x12", "tile grid for custom floorplans, COLSxROWS")
	margin := flag.Float64("margin", 1.2, "worst-case margin over the trace envelope")
	jsonOut := flag.Bool("json", false, "emit the result as JSON on stdout (for scripting)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	var err error
	session, err = obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	defer closeObs(session)
	ctx, cancel := obsFlags.Context()
	defer cancel()

	cols, rows, err := parseTiles(*tiles)
	if err != nil {
		fatal(err)
	}
	loaded, err := chipload.Load(chipload.Spec{
		Name: *chip, FLP: *flpPath, Ptrace: *ptracePath,
		Cols: cols, Rows: rows, Margin: *margin,
	})
	if err != nil {
		fatal(err)
	}

	var m core.CurrentMethod
	switch *method {
	case "golden":
		m = core.CurrentGolden
	case "gradient":
		m = core.CurrentGradient
	case "brent":
		m = core.CurrentBrent
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	opt := core.CurrentOptions{Method: m, Ctx: ctx}
	cfg := core.Config{
		Geom: loaded.Geom,
		Cols: loaded.Grid.Cols, Rows: loaded.Grid.Rows,
		TilePower: loaded.TilePower,
	}
	// Validate before solving so a bad chip file exits with the
	// invalid-input status instead of surfacing as a solver failure.
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	res, err := core.GreedyDeploy(cfg, material.CelsiusToKelvin(*limitC), opt)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		emitJSON(loaded.Name, *limitC, res)
		return
	}
	fmt.Printf("chip %s: no-TEC peak %.2f C, limit %.1f C\n",
		loaded.Name, material.KelvinToCelsius(res.NoTECPeakK), *limitC)
	if res.Success {
		fmt.Printf("greedy deployment SUCCEEDS: %d TECs, %d iteration(s)\n",
			len(res.Sites), len(res.Iterations))
	} else {
		fmt.Printf("greedy deployment FAILS (limit unreachable): best with %d TECs\n", len(res.Sites))
	}
	fmt.Printf("  I_opt   = %.3f A (lambda_m = %.2f A)\n", res.Current.IOpt, res.Current.LambdaM)
	fmt.Printf("  peak    = %.2f C (cooling swing %.2f C)\n",
		material.KelvinToCelsius(res.Current.PeakK),
		res.NoTECPeakK-res.Current.PeakK)
	fmt.Printf("  P_TEC   = %.3f W\n", res.Current.TECPowerW)
	if res.System.Array.Count() > 0 && res.Current.IOpt > 0 {
		fmt.Printf("  COP     = %.2f\n", res.System.Array.ArrayCOP(res.Current.Theta, res.Current.IOpt))
		fmt.Printf("  V_str   = %.3f V (series string)\n",
			res.System.Array.StringVoltage(res.Current.Theta, res.Current.IOpt))
	}
	for n, it := range res.Iterations {
		fmt.Printf("  iter %d: +%d tiles -> peak %.2f C, %d still over\n",
			n+1, len(it.Added), material.KelvinToCelsius(it.PeakK), len(it.OverLimit))
	}

	if *fullCover {
		fc, _, err := core.FullCover(cfg, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("full-cover baseline: min peak %.2f C at %.3f A (P_TEC %.2f W, lambda_m %.2f A)\n",
			material.KelvinToCelsius(fc.PeakK), fc.IOpt, fc.TECPowerW, fc.LambdaM)
		fmt.Printf("  swing loss vs greedy: %.2f C\n", fc.PeakK-res.Current.PeakK)
	}

	if *showMap {
		marked := map[int]bool{}
		for _, s := range res.Sites {
			marked[s] = true
		}
		fmt.Print(floorplan.AsciiMap(loaded.Floorplan, loaded.Grid, marked))
	}
}

// jsonResult is the stable machine-readable summary emitted by -json.
type jsonResult struct {
	Chip        string  `json:"chip"`
	LimitC      float64 `json:"limit_c"`
	Success     bool    `json:"success"`
	NoTECPeakC  float64 `json:"no_tec_peak_c"`
	NumTECs     int     `json:"num_tecs"`
	Sites       []int   `json:"sites"`
	IOptA       float64 `json:"iopt_a"`
	LambdaMA    float64 `json:"lambda_m_a"`
	PeakC       float64 `json:"peak_c"`
	PTECW       float64 `json:"ptec_w"`
	StringVoltV float64 `json:"string_volt_v"`
	Iterations  int     `json:"iterations"`
}

func emitJSON(chip string, limitC float64, res *core.DeployResult) {
	out := jsonResult{
		Chip:       chip,
		LimitC:     limitC,
		Success:    res.Success,
		NoTECPeakC: material.KelvinToCelsius(res.NoTECPeakK),
		NumTECs:    len(res.Sites),
		Sites:      res.Sites,
		IOptA:      res.Current.IOpt,
		LambdaMA:   res.Current.LambdaM,
		PeakC:      material.KelvinToCelsius(res.Current.PeakK),
		PTECW:      res.Current.TECPowerW,
		Iterations: len(res.Iterations),
	}
	if res.System.Array.Count() > 0 {
		out.StringVoltV = res.System.Array.StringVoltage(res.Current.Theta, res.Current.IOpt)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func parseTiles(s string) (cols, rows int, err error) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -tiles %q, want COLSxROWS", s)
	}
	if _, err := fmt.Sscanf(parts[0], "%d", &cols); err != nil {
		return 0, 0, fmt.Errorf("bad -tiles %q: %v", s, err)
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &rows); err != nil {
		return 0, 0, fmt.Errorf("bad -tiles %q: %v", s, err)
	}
	return cols, rows, nil
}

// session is the process observability session, closed by fatal before
// exiting so -metrics/-trace output survives error paths (os.Exit skips
// the deferred close).
var session *obs.Session

// closeObs flushes the observability session, reporting (but not
// failing on) write errors.
func closeObs(s *obs.Session) {
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tecopt:", err)
	}
}

// fatal reports the error and exits with its tecerr taxonomy status
// (2 invalid input, 3 not PD, 4 diverged, 5 cancelled, ...). The error
// also goes to the structured log when -log is on, carrying its tecerr
// code.
func fatal(err error) {
	if l := obs.Logger(); l != nil {
		l.Error("tecopt failed", tecerr.LogAttrs(err)...)
	}
	fmt.Fprintln(os.Stderr, "tecopt:", err)
	closeObs(session)
	os.Exit(tecerr.ExitCode(err))
}
