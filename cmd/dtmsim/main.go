// Command dtmsim simulates runtime TEC current policies against a
// time-varying workload (the paper's introduction vision: active
// cooling + thermal monitoring + DTM operating synergistically).
//
// The workload alternates between the chip's worst-case profile and an
// idle fraction of it, or replays a .ptrace file sample-by-sample.
//
// Usage:
//
//	dtmsim [-chip alpha] [-policy all|off|constant|bangbang|proportional]
//	       [-limit 85] [-busy 120] [-idlefrac 0.25] [-cycles 2]
//	       [-flp chip.flp -ptrace chip.ptrace -period 30]
package main

import (
	"flag"
	"fmt"
	"os"

	"tecopt/internal/chipload"
	"tecopt/internal/core"
	"tecopt/internal/dtm"
	"tecopt/internal/material"
	"tecopt/internal/obs"
	"tecopt/internal/power"
	"tecopt/internal/tecerr"
)

// obsSession is the tool-wide observability session; fatal flushes it
// before exiting.
var obsSession *obs.Session

// closeObs flushes the observability session, reporting (but not
// failing on) write errors.
func closeObs() {
	if err := obsSession.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dtmsim:", err)
	}
	obsSession = nil
}

func main() {
	chip := flag.String("chip", "alpha", "benchmark chip: alpha, hc01..hc10, or hc:<seed>")
	policy := flag.String("policy", "all", "policy: all, off, constant, bangbang or proportional")
	limitC := flag.Float64("limit", 85, "thermal limit (C)")
	busyS := flag.Float64("busy", 120, "busy/idle phase length (s)")
	idleFrac := flag.Float64("idlefrac", 0.25, "idle power as a fraction of worst case")
	cycles := flag.Int("cycles", 2, "number of busy/idle cycles")
	flpPath := flag.String("flp", "", "custom floorplan (.flp); replays -ptrace as the workload")
	ptracePath := flag.String("ptrace", "", "power trace for -flp")
	periodS := flag.Float64("period", 30, "seconds per trace sample when replaying a .ptrace")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	var err error
	obsSession, err = obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	defer closeObs()
	ctx, cancel := obsFlags.Context()
	defer cancel()

	loaded, err := chipload.Load(chipload.Spec{Name: *chip, FLP: *flpPath, Ptrace: *ptracePath})
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{Geom: loaded.Geom, Cols: loaded.Grid.Cols, Rows: loaded.Grid.Rows, TilePower: loaded.TilePower}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	dep, err := core.GreedyDeploy(cfg, material.CelsiusToKelvin(*limitC), core.CurrentOptions{Ctx: ctx})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("chip %s: %d TECs deployed, worst-case I_opt %.2f A\n",
		loaded.Name, len(dep.Sites), dep.Current.IOpt)

	// Workload phases.
	var phases []dtm.PowerPhase
	if *flpPath != "" && *ptracePath != "" {
		pf, err := os.Open(*ptracePath)
		if err != nil {
			fatal(err)
		}
		tr, err := power.ParsePtrace(pf)
		pf.Close()
		if err != nil {
			fatal(err)
		}
		phases, err = dtm.PhasesFromTrace(tr, loaded.Floorplan, loaded.Grid, *periodS)
		if err != nil {
			fatal(err)
		}
	} else {
		idle := make([]float64, len(loaded.TilePower))
		for i, p := range loaded.TilePower {
			idle[i] = *idleFrac * p
		}
		for c := 0; c < *cycles; c++ {
			phases = append(phases,
				dtm.PowerPhase{Duration: *busyS, TilePower: loaded.TilePower},
				dtm.PowerPhase{Duration: *busyS, TilePower: idle},
			)
		}
	}

	limit := material.CelsiusToKelvin(*limitC)
	controllers := map[string]dtm.Controller{
		"off":      dtm.AlwaysOff{},
		"constant": dtm.Constant{CurrentA: dep.Current.IOpt},
		"bangbang": &dtm.BangBang{
			OnAboveK:  limit - 5,
			OffBelowK: limit - 17,
			CurrentA:  dep.Current.IOpt,
		},
		"proportional": dtm.Proportional{
			SetpointK: limit - 13,
			Gain:      2,
			MaxA:      dep.Current.IOpt,
		},
	}
	order := []string{"off", "constant", "bangbang", "proportional"}

	fmt.Printf("%-18s %12s %16s %14s\n", "policy", "max peak C", "time>limit (s)", "TEC energy J")
	for _, name := range order {
		if *policy != "all" && *policy != name {
			continue
		}
		res, err := dtm.Run(dep.System, phases, controllers[name], limit,
			dtm.RunOptions{Dt: 0.05, ControlEvery: 10, Ctx: ctx})
		if err != nil {
			if res != nil {
				// Flush the partial policy run before exiting.
				fmt.Printf("%-18s %12.2f %16.1f %14.1f (partial)\n",
					res.Policy, material.KelvinToCelsius(res.MaxPeakK), res.TimeAboveLimitS, res.TECEnergyJ)
			}
			fatal(err)
		}
		fmt.Printf("%-18s %12.2f %16.1f %14.1f\n",
			res.Policy, material.KelvinToCelsius(res.MaxPeakK), res.TimeAboveLimitS, res.TECEnergyJ)
	}
}

// fatal reports the error and exits with its tecerr taxonomy status.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtmsim:", err)
	closeObs()
	os.Exit(tecerr.ExitCode(err))
}
