// Command benchtable regenerates the paper's Table I: the Alpha-21364-
// like chip plus hypothetical chips HC01..HC10, comparing the greedy TEC
// deployment against the full-cover baseline.
//
// Usage:
//
//	benchtable [-chip all|alpha|hc] [-limit 85] [-parallel N] [-timeout 2m]
//
// Exit status follows the tecerr taxonomy (0 ok, 2 invalid input,
// 5 cancelled/timeout, ...). On timeout the rows completed so far are
// still printed before exiting.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tecopt/internal/bench"
	"tecopt/internal/floorplan"
	"tecopt/internal/obs"
	"tecopt/internal/power"
	"tecopt/internal/tecerr"
)

// closeObs flushes the observability session, reporting (but not
// failing on) write errors.
func closeObs(s *obs.Session) {
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtable:", err)
	}
}

func main() {
	chip := flag.String("chip", "all", "which rows: all, alpha, or hc")
	limit := flag.Float64("limit", 85, "base allowable temperature (C)")
	parallel := flag.Int("parallel", 1, "chips evaluated concurrently (0 = all cores, 1 = serial)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	session, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtable:", err)
		os.Exit(1)
	}
	defer closeObs(session)
	ctx, cancel := obsFlags.Context()
	defer cancel()

	opt := bench.TableIOptions{BaseLimitC: *limit, Parallel: *parallel, Ctx: ctx}
	start := time.Now()
	var rows []*bench.TableIRow
	switch *chip {
	case "all":
		rows, err = bench.RunTableI(opt)
	case "alpha":
		f, g := floorplan.Alpha21364Grid()
		var row *bench.TableIRow
		row, err = bench.RunTableIRow("Alpha", power.AlphaTilePowers(f, g), opt)
		rows = []*bench.TableIRow{row}
	case "hc":
		var chips []*power.HCChip
		chips, err = power.GenerateHCSuite(power.DefaultHCSpec())
		if err == nil {
			for _, c := range chips {
				var row *bench.TableIRow
				row, err = bench.RunTableIRow(c.Name, c.TilePower, opt)
				if err != nil {
					break
				}
				rows = append(rows, row)
			}
		}
	default:
		err = fmt.Errorf("unknown -chip %q", *chip)
	}
	if err != nil {
		// Flush whatever rows completed before the failure — a timed-out
		// table run still paid for them.
		var done []*bench.TableIRow
		for _, r := range rows {
			if r != nil {
				done = append(done, r)
			}
		}
		if len(done) > 0 {
			fmt.Printf("(partial: %d of %d rows before error)\n", len(done), len(rows))
			fmt.Print(bench.FormatTableI(done))
		}
		fmt.Fprintln(os.Stderr, "benchtable:", err)
		closeObs(session)
		os.Exit(tecerr.ExitCode(err))
	}
	fmt.Print(bench.FormatTableI(rows))
	fmt.Printf("\nmax cooling swing %.1f C | avg swing loss %.1f C | failures at %.0f C: %v | total %v\n",
		bench.MaxCoolingSwingC(rows), bench.AvgSwingLossC(rows), *limit,
		bench.FailuresAtBase(rows), time.Since(start).Round(time.Millisecond))
}
