# Development targets. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race race-engine chaos serve-chaos serve-smoke bench-serve vet lint lint-json lint-sarif lint-fixtures bench-json bench-gate fuzz-smoke obs-overhead trace-golden check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race gate for the parallel solve engine and its core call
# sites: the concurrency-heavy packages, without the full-suite cost.
race-engine:
	$(GO) test -race ./internal/engine/... ./internal/core/...

# Chaos gate: the seeded fault-injection suite (injected panics, NaNs,
# cancellations, and forced non-convergence against the real pipeline)
# plus the packages that implement the recovery paths, under the race
# detector. -count=1 because the injector is process-global state the
# test cache cannot see.
chaos:
	$(GO) test -race -count=1 ./internal/faults/... ./internal/engine/... ./internal/thermal/...

# Service chaos gate: seeded faults (typed errors of every class,
# worker panics, injected latency) driven through the live tecserve
# HTTP pipeline under the race detector, asserting the status-code
# contract, per-request isolation, backpressure, deadline partial
# flush, and the drain state machine, plus the gate drain-vs-acquire
# stress in the engine. -count=1: the fault injector is process-global
# state the test cache cannot see.
serve-chaos:
	$(GO) test -race -count=1 ./internal/serve/
	$(GO) test -race -count=1 -run 'TestGateDrain' ./internal/engine/

# Service smoke: build the real tecserve binary, drive every endpoint
# over HTTP, force a 429 through a one-worker/no-queue configuration,
# verify the cross-request solver-cache hit on /metrics, and
# SIGTERM-drain to a clean exit 0.
serve-smoke:
	$(GO) test -count=1 -run 'TestServeBinary' ./cmd/tecserve

# Serving latency snapshot: open-loop load from cmd/tecload against an
# in-process server; the p50/p99/throughput result lines are distilled
# into BENCH_serve.json by the same benchjson -merge flow the solver
# benchmarks use (EXPERIMENTS.md tracks history).
bench-serve:
	@[ -f BENCH_serve.json ] || echo '[]' > BENCH_serve.json
	$(GO) run ./cmd/tecload -self -rate 100 -duration 5s \
		| $(GO) run ./cmd/benchjson -merge BENCH_serve.json > BENCH_serve.json.tmp
	mv BENCH_serve.json.tmp BENCH_serve.json
	@cat BENCH_serve.json

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/teclint ./...

# Machine-readable lint report, checked against the committed baseline
# (which is empty: the tree lints clean; the baseline exists so CI can
# upload the JSON artifact and so a future emergency waiver has a
# documented home). Exit code 2 = teclint itself failed to load the
# tree; 1 = findings beyond the baseline; 0 = clean.
lint-json:
	$(GO) run ./cmd/teclint -json -baseline teclint.baseline.json ./... > teclint.json; \
	status=$$?; cat teclint.json; exit $$status

# SARIF 2.1.0 report for code-scanning UIs; CI uploads teclint.sarif
# as an artifact alongside the JSON report. Same exit-code contract as
# lint-json.
lint-sarif:
	$(GO) run ./cmd/teclint -format=sarif ./... > teclint.sarif; \
	status=$$?; cat teclint.sarif; exit $$status

# Fixture gate: lints the seeded-violation fixture packages and checks
# the per-rule finding counts against the committed expectations. A
# refactor that silently kills an analyzer (zero findings where the
# fixtures seed some) fails here even though `make lint` stays green.
lint-fixtures:
	$(GO) run ./cmd/teclint -expect cmd/teclint/testdata/fixture_counts.json internal/lint/testdata/*/

# Benchmark snapshot: runs the Table I and h_kl-sweep engine benchmarks
# (default-path, explicit-SMW, and explicit-direct variants) through
# `go test -bench -json` and distills name / ns/op / allocs into
# BENCH_solver.json (committed; EXPERIMENTS.md tracks history).
# -benchtime=1x because Table I is a full paper reproduction per
# iteration — one timed run is the snapshot. -merge keeps snapshot
# entries a partial run did not re-measure; the temp file exists
# because the merge reads the same file the pipeline writes.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine_(TableI|HklSweep)(_SMW|_Direct)?$$' \
		-benchmem -benchtime=1x -json ./internal/bench ./internal/core \
		| $(GO) run ./cmd/benchjson -merge BENCH_solver.json > BENCH_solver.json.tmp
	mv BENCH_solver.json.tmp BENCH_solver.json
	@cat BENCH_solver.json

# Benchmark regression gate: re-times the SMW fast-path benchmarks and
# fails if any regresses more than 20% in ns/op against the committed
# BENCH_solver.json snapshot. Only the fast variants run — the gate
# must stay cheap enough for CI.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine_(TableI_SMW|HklSweep_SMW)$$' \
		-benchmem -benchtime=1x -json ./internal/bench ./internal/core \
		| $(GO) run ./cmd/benchjson -gate BENCH_solver.json

# Short fuzz runs over every parser fuzz target; catches regressions in
# input handling without the cost of a long campaign. FuzzCFG throws
# arbitrary function bodies at the lint CFG builder, which must never
# panic on code that parses; FuzzDataflow pushes the resulting graphs
# through the fixpoint engine (step-bound termination, state isolation).
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseFLP -fuzztime=$(FUZZTIME) -run='^$$' ./internal/floorplan
	$(GO) test -fuzz=FuzzParsePtrace -fuzztime=$(FUZZTIME) -run='^$$' ./internal/power
	$(GO) test -fuzz=FuzzCFG -fuzztime=$(FUZZTIME) -run='^$$' ./internal/lint
	$(GO) test -fuzz=FuzzDataflow -fuzztime=$(FUZZTIME) -run='^$$' ./internal/lint
	$(GO) test -fuzz=FuzzSMWGuard -fuzztime=$(FUZZTIME) -run='^$$' ./internal/sparse

# Observability overhead gate: runs the Table I workload with the obs
# registry off and on, and fails if instrumentation costs more than 5%.
obs-overhead:
	OBS_OVERHEAD=1 $(GO) test -count=1 -run TestObsOverheadOnTableI -v ./internal/bench

# Flight-recorder format gate: the JSONL byte-compat pin (flat traces
# must serialize exactly as before the flight recorder existed), the
# deterministic flight/Perfetto goldens in cmd/tectrace, and the
# concurrent-hierarchy test in the engine. Regenerate the goldens with
#   go test ./cmd/tectrace -update
# after an intentional format change.
trace-golden:
	$(GO) test -count=1 -run 'TestFlatTraceByteCompat|TestPerfettoExport' ./internal/obs
	$(GO) test -count=1 ./cmd/tectrace
	$(GO) test -count=1 -run TestMapTasksCtxFlight ./internal/engine

# The full gate, in the order CI runs it.
check: build vet lint lint-fixtures test race chaos serve-chaos serve-smoke
