module tecopt

go 1.22
